#include "util/threadpool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace vksim {

namespace {

/// The pool this thread is currently executing a job for (nesting guard).
thread_local const ThreadPool *tl_activePool = nullptr;

/// RAII marker for "this thread is inside a parallelFor body".
struct ActivePoolScope
{
    explicit ActivePoolScope(const ThreadPool *pool)
    {
        tl_activePool = pool;
    }
    ~ActivePoolScope() { tl_activePool = nullptr; }
};

/**
 * Bounded spin before parking on a condition variable. The engine
 * re-arms the pool once per barrier — every cycle in lock-step mode —
 * so a full futex sleep/wake round trip per barrier dominates the cost
 * of cycling small SM sets. A few thousand pause iterations cover the
 * inter-barrier gap of a busy simulation; an idle pool still parks.
 */
constexpr unsigned kSpinIterations = 4096;

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
}

} // namespace

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("VKSIM_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned lanes = resolveThreadCount(threads);
    // Spinning only pays off when every lane can hold a core through
    // the barrier; oversubscribed lanes should yield their time slice
    // to whoever holds the actual work and park immediately.
    spinIters_ =
        std::thread::hardware_concurrency() >= lanes ? kSpinIterations : 0;
    workers_.reserve(lanes - 1);
    for (unsigned i = 0; i + 1 < lanes; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_.store(true, std::memory_order_release);
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runChunks(const std::function<void(std::size_t)> &body,
                      std::size_t n, std::size_t chunk)
{
    for (;;) {
        std::size_t begin =
            nextIndex_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n)
            return;
        std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin-then-park: poll for the next job lock-free for a bounded
        // interval (covers the barrier-to-barrier gap of a running
        // engine), then fall back to the condition variable so an idle
        // pool costs nothing.
        for (unsigned i = 0; i < spinIters_ && !jobReady(seen); ++i)
            cpuRelax();
        if (!jobReady(seen)) {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] { return jobReady(seen); });
        }
        if (shutdown_.load(std::memory_order_acquire))
            return;
        // The acquire load of generation_ in jobReady() ordered the job
        // fields (published before the release bump): safe to read them
        // without the mutex.
        seen = generation_.load(std::memory_order_acquire);
        {
            ActivePoolScope scope(this);
            runChunks(*body_, jobSize_, chunk_);
        }
        if (working_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Last worker out: take the mutex so a caller between its
            // predicate check and wait cannot miss the notification.
            std::lock_guard<std::mutex> lock(mutex_);
            done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (tl_activePool == this)
        throw std::logic_error(
            "nested ThreadPool::parallelFor on the same pool");

    if (workers_.empty() || n == 1) {
        ActivePoolScope scope(this);
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // One job in flight at a time: concurrent callers (distinct threads)
    // queue up here instead of corrupting the published job state. The
    // nesting guard above ran first, so a worker lane can never reach
    // this lock while holding it through its own job.
    std::lock_guard<std::mutex> submit_lock(submitMutex_);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        jobSize_ = n;
        // Chunked self-scheduling: big enough to amortize the atomic,
        // small enough to balance uneven iteration costs.
        chunk_ = std::max<std::size_t>(1, n / (threadCount() * 4u));
        nextIndex_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        working_.store(static_cast<unsigned>(workers_.size()),
                       std::memory_order_relaxed);
        // Release-publish: a spinning worker that sees the new
        // generation is guaranteed to see every job field above.
        generation_.fetch_add(1, std::memory_order_release);
    }
    wake_.notify_all();

    {
        ActivePoolScope scope(this);
        runChunks(body, n, chunk_);
    }

    // Join, spin first: the workers' remaining chunks drain within the
    // same barrier interval the spin covers on their side.
    for (unsigned i = 0;
         i < spinIters_ && working_.load(std::memory_order_acquire) != 0;
         ++i)
        cpuRelax();
    if (working_.load(std::memory_order_acquire) != 0) {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return working_.load(std::memory_order_acquire) == 0;
        });
    }
    body_ = nullptr;

    if (error_)
        std::rethrow_exception(error_);
}

ThreadPool &
sharedThreadPool()
{
    static ThreadPool pool(0);
    return pool;
}

} // namespace vksim
