#include "util/threadpool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace vksim {

namespace {

/// The pool this thread is currently executing a job for (nesting guard).
thread_local const ThreadPool *tl_activePool = nullptr;

/// RAII marker for "this thread is inside a parallelFor body".
struct ActivePoolScope
{
    explicit ActivePoolScope(const ThreadPool *pool)
    {
        tl_activePool = pool;
    }
    ~ActivePoolScope() { tl_activePool = nullptr; }
};

} // namespace

unsigned
ThreadPool::resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("VKSIM_THREADS")) {
        long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    unsigned lanes = resolveThreadCount(threads);
    workers_.reserve(lanes - 1);
    for (unsigned i = 0; i + 1 < lanes; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runChunks(const std::function<void(std::size_t)> &body,
                      std::size_t n, std::size_t chunk)
{
    for (;;) {
        std::size_t begin =
            nextIndex_.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= n)
            return;
        std::size_t end = std::min(n, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
        }
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        std::size_t n = 0;
        std::size_t chunk = 1;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            body = body_;
            n = jobSize_;
            chunk = chunk_;
        }
        {
            ActivePoolScope scope(this);
            runChunks(*body, n, chunk);
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--working_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (tl_activePool == this)
        throw std::logic_error(
            "nested ThreadPool::parallelFor on the same pool");

    if (workers_.empty() || n == 1) {
        ActivePoolScope scope(this);
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // One job in flight at a time: concurrent callers (distinct threads)
    // queue up here instead of corrupting the published job state. The
    // nesting guard above ran first, so a worker lane can never reach
    // this lock while holding it through its own job.
    std::lock_guard<std::mutex> submit_lock(submitMutex_);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        jobSize_ = n;
        // Chunked self-scheduling: big enough to amortize the atomic,
        // small enough to balance uneven iteration costs.
        chunk_ = std::max<std::size_t>(1, n / (threadCount() * 4u));
        nextIndex_.store(0, std::memory_order_relaxed);
        error_ = nullptr;
        working_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    wake_.notify_all();

    {
        ActivePoolScope scope(this);
        runChunks(body, n, chunk_);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return working_ == 0; });
    body_ = nullptr;
    lock.unlock();

    if (error_)
        std::rethrow_exception(error_);
}

ThreadPool &
sharedThreadPool()
{
    static ThreadPool pool(0);
    return pool;
}

} // namespace vksim
