#include "util/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/log.h"

namespace vksim {

namespace {

std::uint8_t
encodeChannel(float v)
{
    float clamped = std::clamp(v, 0.0f, 1.0f);
    float gamma = std::pow(clamped, 1.0f / 2.2f);
    return static_cast<std::uint8_t>(std::lround(gamma * 255.0f));
}

} // namespace

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warnStr("cannot open " + path + " for writing");
        return false;
    }
    std::fprintf(f, "P6\n%u %u\n255\n", width_, height_);
    std::vector<std::uint8_t> row(3ull * width_);
    for (unsigned y = 0; y < height_; ++y) {
        for (unsigned x = 0; x < width_; ++x)
            for (unsigned c = 0; c < 3; ++c)
                row[3ull * x + c] = encodeChannel(at(x, y, c));
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

ImageDiff
compareImages(const Image &a, const Image &b, float tolerance)
{
    ImageDiff diff;
    if (a.width() != b.width() || a.height() != b.height())
        vksim_fatal("compareImages: image dimensions differ");
    diff.totalPixels =
        static_cast<std::uint64_t>(a.width()) * a.height();
    double delta_sum = 0.0;
    for (unsigned y = 0; y < a.height(); ++y) {
        for (unsigned x = 0; x < a.width(); ++x) {
            bool differs = false;
            for (unsigned c = 0; c < 3; ++c) {
                double d = std::abs(static_cast<double>(a.at(x, y, c))
                                    - b.at(x, y, c));
                delta_sum += d;
                diff.maxChannelDelta = std::max(diff.maxChannelDelta, d);
                if (d > tolerance)
                    differs = true;
            }
            if (differs)
                ++diff.differingPixels;
        }
    }
    diff.meanChannelDelta =
        diff.totalPixels ? delta_sum / (3.0 * diff.totalPixels) : 0.0;
    return diff;
}

} // namespace vksim
