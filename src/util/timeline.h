/**
 * @file
 * Chrome-trace (chrome://tracing / Perfetto "JSON Array" format) timeline
 * sink for the timed simulator.
 *
 * Events carry *simulated-cycle* timestamps, never host time, so a trace
 * is a property of the modelled machine: bit-identical for every engine
 * thread count. Each recording site owns a TimelineShard (one per SM
 * plus one for the shared memory fabric); shards are appended to by at
 * most one thread at a time (the SM's worker during cycle(), or the
 * single barrier thread for the fabric) and merged in fixed shard order
 * when the file is written.
 *
 * Full-workload traces are kept bounded by two controls:
 *  - sampleInterval: periodic counter tracks (occupancy, queue depths,
 *    MSHRs in use) emit one sample every N cycles;
 *  - maxEvents: a global event budget split evenly across shards — each
 *    shard stops recording at its slice and counts what it dropped, so
 *    the cut-off is deterministic too.
 */

#ifndef VKSIM_UTIL_TIMELINE_H
#define VKSIM_UTIL_TIMELINE_H

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/types.h"

namespace vksim {

/** Timeline sink configuration (CLI: --timeline=PATH etc.). */
struct TimelineConfig
{
    std::string path;             ///< empty = sink disabled
    Cycle sampleInterval = 64;    ///< counter-track sampling period
    std::uint64_t maxEvents = 1u << 20; ///< global event budget

    bool enabled() const { return !path.empty(); }
};

/** One single-writer event buffer (per SM / per fabric). */
class TimelineShard
{
  public:
    /** Duration event (ph "X"): [start, end] on `track`. */
    void complete(std::string track, std::string name, Cycle start,
                  Cycle end);

    /** Instant event (ph "i"). */
    void instant(std::string track, std::string name, Cycle ts);

    /** Counter-track sample (ph "C"). */
    void counter(std::string track, Cycle ts, double value);

    /** True when a counter sample is due at `now`. */
    bool
    sampleDue(Cycle now) const
    {
        return sampleInterval_ != 0 && now % sampleInterval_ == 0;
    }

    /** Counter-sample period in cycles (0 = sampling disabled). */
    Cycle sampleInterval() const { return sampleInterval_; }

    std::uint64_t dropped() const { return dropped_; }
    std::size_t eventCount() const { return events_.size(); }

  private:
    friend class Timeline;

    struct Event
    {
        char phase;       ///< 'X', 'i' or 'C'
        std::string track;
        std::string name; ///< empty for counters (track names the series)
        Cycle ts = 0;
        Cycle dur = 0;
        double value = 0.0;
    };

    void record(Event &&ev);

    std::vector<Event> events_;
    std::uint64_t capacity_ = 0;
    Cycle sampleInterval_ = 0;
    std::uint64_t dropped_ = 0;
    unsigned pid_ = 0;
    std::string processName_;
};

/** The whole trace: owns the shards, writes the JSON file. */
class Timeline
{
  public:
    /**
     * `num_shards` single-writer buffers; shard `i` reports as Chrome
     * process `i`. The event budget is split evenly across shards.
     */
    Timeline(const TimelineConfig &config, unsigned num_shards);

    TimelineShard *shard(unsigned idx) { return shards_[idx].get(); }
    unsigned numShards() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Label shard `idx`'s Chrome process (emitted as M-phase metadata). */
    void setProcessName(unsigned idx, std::string name);

    std::uint64_t eventCount() const;
    std::uint64_t droppedCount() const;

    /** Serialize all shards, in shard order, as one Chrome-trace doc. */
    void writeJson(std::ostream &os) const;

    /** Write to config.path. @return success (error goes to `error`). */
    bool writeFile(std::string *error = nullptr) const;

    const TimelineConfig &config() const { return config_; }

  private:
    TimelineConfig config_;
    std::vector<std::unique_ptr<TimelineShard>> shards_;
};

} // namespace vksim

#endif // VKSIM_UTIL_TIMELINE_H
