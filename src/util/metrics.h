/**
 * @file
 * Unified observability registry: hierarchically named counters, gauges,
 * accumulators and histograms with a deterministic, machine-readable
 * dump.
 *
 * Every timed subsystem registers its statistics here (directly or by
 * importing a legacy StatGroup under a dotted prefix) instead of keeping
 * loose struct fields. Per-SM shard registries are folded with merge()
 * in fixed SM order, which extends the parallel-engine determinism
 * contract (DESIGN.md) to the complete metrics dump: toJson() output is
 * byte-identical for every engine thread count.
 *
 * Naming convention: dot-separated hierarchical paths, lower_snake_case
 * segments, e.g. "gpu.l1.hits.shader" or "gpu.rt.warp_latency_hist".
 */

#ifndef VKSIM_UTIL_METRICS_H
#define VKSIM_UTIL_METRICS_H

#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "util/stats.h"

namespace vksim {

/** A last-value-wins scalar (derived ratios, configuration echoes). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * The registry. Metrics are created on first access by dotted path; a
 * path permanently belongs to the kind that created it, and re-using it
 * as a different kind throws std::logic_error (name-collision guard).
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    /** Get-or-create. Throws std::logic_error on a kind collision. */
    Counter &counter(const std::string &path);
    Gauge &gauge(const std::string &path);
    Accumulator &accum(const std::string &path);

    /**
     * Get-or-create a histogram. The geometry is fixed at creation;
     * re-requesting an existing path with a different geometry throws.
     */
    Histogram &histogram(const std::string &path, double bucket_width = 1.0,
                         unsigned num_buckets = 32);

    /** Counter value by path; 0 when absent or not a counter. */
    std::uint64_t get(const std::string &path) const;

    /** Gauge value by path; 0.0 when absent or not a gauge. */
    double gaugeValue(const std::string &path) const;

    /** Histogram lookup; nullptr when absent or not a histogram. */
    const Histogram *findHistogram(const std::string &path) const;

    bool has(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    /**
     * Fold a StatGroup's counters and accumulators in under
     * `prefix + "." + name` (counters add, accumulators merge). Call in
     * fixed shard order for determinism of the double-valued folds.
     */
    void importGroup(const std::string &prefix, const StatGroup &group);

    /**
     * Fold another registry (a per-SM shard) into this one: counters
     * add, accumulators and histograms merge, gauges take the other
     * side's value. Merge shards in fixed SM order (determinism
     * contract).
     */
    void merge(const MetricsRegistry &other);

    /** Reset every metric to its zero state (paths are kept). */
    void reset();

    /** "path = value" lines, sorted by path. */
    std::string dumpText() const;

    /**
     * Deterministic JSON dump: one object with "counters", "gauges",
     * "accumulators" and "histograms" sections, keys sorted, doubles in
     * shortest round-trip form. `indent` shifts the whole document right
     * (for embedding in an enclosing object).
     */
    void writeJson(std::ostream &os, unsigned indent = 0) const;
    std::string toJson(unsigned indent = 0) const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Accum,
        Histogram
    };

    struct Entry
    {
        Kind kind = Kind::Counter;
        Counter counter;
        Gauge gauge;
        Accumulator accum;
        std::unique_ptr<Histogram> hist;
    };

    Entry &getOrCreate(const std::string &path, Kind kind);
    const Entry *find(const std::string &path, Kind kind) const;

    std::map<std::string, Entry> entries_;
};

/**
 * Shortest-round-trip decimal rendering of a double (std::to_chars):
 * deterministic for identical bits, so JSON dumps built from
 * deterministic values are byte-stable. Non-finite values render as
 * "null" (JSON has no NaN/Inf).
 */
std::string formatJsonNumber(double v);

} // namespace vksim

#endif // VKSIM_UTIL_METRICS_H
