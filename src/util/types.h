/**
 * @file
 * Fundamental scalar type aliases shared across the simulator.
 */

#ifndef VKSIM_UTIL_TYPES_H
#define VKSIM_UTIL_TYPES_H

#include <cstdint>

namespace vksim {

/** Simulated 64-bit global memory address. */
using Addr = std::uint64_t;

/** Simulator cycle count (core-clock domain unless noted otherwise). */
using Cycle = std::uint64_t;

/** Identifier for a shader registered in a shader binding table. */
using ShaderId = std::int32_t;

/** Sentinel for "no shader bound". */
inline constexpr ShaderId kInvalidShader = -1;

/** Warp width used throughout the model (the paper models 32). */
inline constexpr unsigned kWarpSize = 32;

} // namespace vksim

#endif // VKSIM_UTIL_TYPES_H
