#include "util/metrics.h"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vksim {

namespace {

const char *
kindName(int kind)
{
    switch (kind) {
      case 0: return "counter";
      case 1: return "gauge";
      case 2: return "accumulator";
      case 3: return "histogram";
    }
    return "?";
}

/** JSON string escaping for metric paths (they are plain ASCII, but be
 *  correct anyway). */
std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
formatJsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

MetricsRegistry::Entry &
MetricsRegistry::getOrCreate(const std::string &path, Kind kind)
{
    if (path.empty())
        throw std::logic_error("empty metric path");
    auto [it, inserted] = entries_.try_emplace(path);
    if (inserted) {
        it->second.kind = kind;
    } else if (it->second.kind != kind) {
        throw std::logic_error(
            "metric path '" + path + "' already registered as a "
            + kindName(static_cast<int>(it->second.kind))
            + ", requested as a " + kindName(static_cast<int>(kind)));
    }
    return it->second;
}

const MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &path, Kind kind) const
{
    auto it = entries_.find(path);
    if (it == entries_.end() || it->second.kind != kind)
        return nullptr;
    return &it->second;
}

Counter &
MetricsRegistry::counter(const std::string &path)
{
    return getOrCreate(path, Kind::Counter).counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &path)
{
    return getOrCreate(path, Kind::Gauge).gauge;
}

Accumulator &
MetricsRegistry::accum(const std::string &path)
{
    return getOrCreate(path, Kind::Accum).accum;
}

Histogram &
MetricsRegistry::histogram(const std::string &path, double bucket_width,
                           unsigned num_buckets)
{
    Entry &e = getOrCreate(path, Kind::Histogram);
    if (!e.hist) {
        e.hist = std::make_unique<Histogram>(bucket_width, num_buckets);
    } else if (e.hist->bucketWidth() != bucket_width
               || e.hist->buckets().size() != num_buckets) {
        throw std::logic_error("histogram '" + path
                               + "' re-registered with a different "
                                 "geometry");
    }
    return *e.hist;
}

std::uint64_t
MetricsRegistry::get(const std::string &path) const
{
    const Entry *e = find(path, Kind::Counter);
    return e ? e->counter.value() : 0;
}

double
MetricsRegistry::gaugeValue(const std::string &path) const
{
    const Entry *e = find(path, Kind::Gauge);
    return e ? e->gauge.value() : 0.0;
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &path) const
{
    const Entry *e = find(path, Kind::Histogram);
    return e ? e->hist.get() : nullptr;
}

bool
MetricsRegistry::has(const std::string &path) const
{
    return entries_.count(path) != 0;
}

void
MetricsRegistry::importGroup(const std::string &prefix,
                             const StatGroup &group)
{
    for (const auto &[name, c] : group.counters())
        counter(prefix + "." + name).inc(c.value());
    for (const auto &[name, a] : group.accums())
        accum(prefix + "." + name).merge(a);
}

void
MetricsRegistry::merge(const MetricsRegistry &other)
{
    for (const auto &[path, e] : other.entries_) {
        switch (e.kind) {
          case Kind::Counter:
            counter(path).inc(e.counter.value());
            break;
          case Kind::Gauge:
            gauge(path).set(e.gauge.value());
            break;
          case Kind::Accum:
            accum(path).merge(e.accum);
            break;
          case Kind::Histogram:
            histogram(path, e.hist->bucketWidth(),
                      static_cast<unsigned>(e.hist->buckets().size()))
                .merge(*e.hist);
            break;
        }
    }
}

void
MetricsRegistry::reset()
{
    for (auto &[path, e] : entries_) {
        switch (e.kind) {
          case Kind::Counter: e.counter.reset(); break;
          case Kind::Gauge: e.gauge.reset(); break;
          case Kind::Accum: e.accum.reset(); break;
          case Kind::Histogram: e.hist->reset(); break;
        }
    }
}

std::string
MetricsRegistry::dumpText() const
{
    std::ostringstream os;
    for (const auto &[path, e] : entries_) {
        switch (e.kind) {
          case Kind::Counter:
            os << path << " = " << e.counter.value() << "\n";
            break;
          case Kind::Gauge:
            os << path << " = " << formatJsonNumber(e.gauge.value())
               << "\n";
            break;
          case Kind::Accum:
            os << path << ".count = " << e.accum.count() << "\n"
               << path << ".mean = " << formatJsonNumber(e.accum.mean())
               << "\n";
            break;
          case Kind::Histogram:
            os << path << ".count = " << e.hist->summary().count() << "\n"
               << path << ".overflow = " << e.hist->overflow() << "\n";
            break;
        }
    }
    return os.str();
}

void
MetricsRegistry::writeJson(std::ostream &os, unsigned indent) const
{
    const std::string base(indent, ' ');
    const std::string in1 = base + "  ";
    const std::string in2 = base + "    ";

    auto section = [&](const char *title, Kind kind, auto &&emit) {
        os << in1 << '"' << title << "\": {";
        bool first = true;
        for (const auto &[path, e] : entries_) {
            if (e.kind != kind)
                continue;
            os << (first ? "\n" : ",\n") << in2 << jsonQuote(path)
               << ": ";
            emit(e);
            first = false;
        }
        os << (first ? "" : "\n" + in1) << "}";
    };

    os << base << "{\n";
    section("counters", Kind::Counter,
            [&](const Entry &e) { os << e.counter.value(); });
    os << ",\n";
    section("gauges", Kind::Gauge, [&](const Entry &e) {
        os << formatJsonNumber(e.gauge.value());
    });
    os << ",\n";
    section("accumulators", Kind::Accum, [&](const Entry &e) {
        const Accumulator &a = e.accum;
        os << "{\"count\": " << a.count()
           << ", \"sum\": " << formatJsonNumber(a.sum())
           << ", \"min\": " << formatJsonNumber(a.min())
           << ", \"max\": " << formatJsonNumber(a.max())
           << ", \"mean\": " << formatJsonNumber(a.mean()) << "}";
    });
    os << ",\n";
    section("histograms", Kind::Histogram, [&](const Entry &e) {
        const Histogram &h = *e.hist;
        os << "{\"bucket_width\": " << formatJsonNumber(h.bucketWidth())
           << ", \"num_buckets\": " << h.buckets().size()
           << ", \"overflow\": " << h.overflow()
           << ", \"count\": " << h.summary().count()
           << ", \"sum\": " << formatJsonNumber(h.summary().sum())
           << ", \"min\": " << formatJsonNumber(h.summary().min())
           << ", \"max\": " << formatJsonNumber(h.summary().max())
           << ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets().size(); ++i)
            os << (i ? ", " : "") << h.buckets()[i];
        os << "]}";
    });
    os << "\n" << base << "}";
}

std::string
MetricsRegistry::toJson(unsigned indent) const
{
    std::ostringstream os;
    writeJson(os, indent);
    return os.str();
}

} // namespace vksim
