/**
 * @file
 * Minimal command-line option parsing: `--key=value` and `--flag` forms,
 * no registration, unknown flags ignored.
 *
 * @deprecated Only the bench_* pretty-printers still use this. The
 * examples and tools moved to util/cli.h, which registers flags,
 * generates --help, and rejects unknown flags.
 */

#ifndef VKSIM_UTIL_OPTIONS_H
#define VKSIM_UTIL_OPTIONS_H

#include <map>
#include <string>

namespace vksim {

/** Parsed command line. */
class Options
{
  public:
    Options(int argc, char **argv);

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;
    long getInt(const std::string &key, long fallback) const;
    double getFloat(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback = false) const;

    /**
     * Engine thread count from `--threads=N` / `--serial` / the
     * VKSIM_THREADS environment variable, in that precedence order.
     * Returns the GpuConfig::threads convention: 0 = auto (hardware
     * concurrency), 1 = serial engine.
     */
    unsigned threadCount() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace vksim

#endif // VKSIM_UTIL_OPTIONS_H
