#include "hwproxy/hwproxy.h"

#include <cmath>

namespace vksim {

WorkloadProfile
profileWorkload(wl::Workload &workload)
{
    WorkloadProfile profile;

    TraceCounters counters;
    workload.renderReferenceImage(&counters);
    profile.rays = counters.rays;
    profile.nodesVisited = counters.nodesVisited;
    profile.boxTests = counters.boxTests;
    profile.triangleTests = counters.triangleTests;

    StatGroup stats;
    workload.runFunctional(vptx::WarpCflow::Mode::Stack, &stats);
    profile.shaderInstructions = stats.get("instructions");
    // Every node visit moves 64-128 B; approximate memory sectors from
    // node fetches plus a per-instruction share of shader loads.
    profile.memorySectors =
        profile.nodesVisited * 2 + stats.get("ldst") * 2;
    return profile;
}

double
estimateHardwareCycles(const WorkloadProfile &profile,
                       const HwProxyConfig &config)
{
    double compute = static_cast<double>(profile.shaderInstructions)
                     / (config.smCount * config.ipcPerSm);
    double traversal = static_cast<double>(profile.nodesVisited)
                       / (config.smCount * config.rtCoresPerSm
                          * config.nodesPerRtCoreCycle);
    double memory = static_cast<double>(profile.memorySectors)
                    * kSectorBytes / config.bytesPerCycle;
    double latency = static_cast<double>(profile.rays)
                     * config.rayFixedCycles
                     / (config.smCount * kWarpSize);
    double bottleneck = std::max({compute, traversal, memory});
    return config.baselineCycles + bottleneck + latency;
}

Correlation
correlate(const std::vector<double> &hw, const std::vector<double> &sim)
{
    Correlation out;
    const std::size_t n = std::min(hw.size(), sim.size());
    if (n == 0)
        return out;
    double mean_x = 0, mean_y = 0;
    for (std::size_t i = 0; i < n; ++i) {
        mean_x += hw[i];
        mean_y += sim[i];
    }
    mean_x /= static_cast<double>(n);
    mean_y /= static_cast<double>(n);
    double cov = 0, var_x = 0, var_y = 0, xy = 0, xx = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double dx = hw[i] - mean_x;
        double dy = sim[i] - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
        xy += hw[i] * sim[i];
        xx += hw[i] * hw[i];
    }
    if (var_x > 0 && var_y > 0)
        out.coefficient = cov / std::sqrt(var_x * var_y);
    if (xx > 0)
        out.slope = xy / xx;
    return out;
}

} // namespace vksim
