/**
 * @file
 * Analytical hardware-proxy cost model standing in for the NVIDIA RTX
 * 2080 SUPER in the paper's cycle-correlation studies (Fig. 11 and
 * Fig. 19). We have no RTX hardware, so the correlation target is an
 * independent roofline-style estimate of a Turing-like GPU with one warp
 * per RT core — a *different* model than the simulator, which is what a
 * correlation study needs (see DESIGN.md substitutions).
 */

#ifndef VKSIM_HWPROXY_HWPROXY_H
#define VKSIM_HWPROXY_HWPROXY_H

#include "gpu/gpu.h"
#include "reftrace/tracer.h"
#include "workloads/workload.h"

namespace vksim {

/** Aggregate workload profile feeding the proxy. */
struct WorkloadProfile
{
    std::uint64_t rays = 0;
    std::uint64_t nodesVisited = 0;
    std::uint64_t boxTests = 0;
    std::uint64_t triangleTests = 0;
    std::uint64_t shaderInstructions = 0;
    std::uint64_t memorySectors = 0;
};

/** Extract a profile by running the workload functionally. */
WorkloadProfile profileWorkload(wl::Workload &workload);

/** Proxy machine parameters (Turing-like). */
struct HwProxyConfig
{
    double smCount = 48;
    double ipcPerSm = 1.0;          ///< sustained warp instructions/cycle
    double nodesPerRtCoreCycle = 0.5;
    double rtCoresPerSm = 1;
    double bytesPerCycle = 140;     ///< effective DRAM bytes per core cycle
    double rayFixedCycles = 60;     ///< per-ray launch/commit overhead
    double baselineCycles = 6000;   ///< kernel launch overhead
};

/**
 * Proxy variant for the Figure 19 correlation study: a hardware estimate
 * that is RT-serialization heavy (one warp per RT core, reduced node
 * throughput and effective bandwidth), reflecting the paper's conclusion
 * that NVIDIA's RT cores hold a single warp each.
 */
inline HwProxyConfig
serializedRtProxy()
{
    HwProxyConfig cfg;
    cfg.nodesPerRtCoreCycle = 0.125;
    cfg.bytesPerCycle = 35;
    return cfg;
}

/**
 * Estimated hardware cycles for the profile: the bottleneck term of a
 * roofline over compute, RT-core traversal and memory bandwidth, plus
 * latency-bound per-ray overhead.
 */
double estimateHardwareCycles(const WorkloadProfile &profile,
                              const HwProxyConfig &config = {});

/** Pearson correlation and least-squares slope through the origin. */
struct Correlation
{
    double coefficient = 0; ///< Pearson r
    double slope = 0;       ///< y = slope * x fit
};

Correlation correlate(const std::vector<double> &hw_cycles,
                      const std::vector<double> &sim_cycles);

} // namespace vksim

#endif // VKSIM_HWPROXY_HWPROXY_H
