#include "vulkan/device.h"

#include "nir/validate.h"

namespace vksim {

std::shared_ptr<const CompiledPipeline>
Device::translatePipeline(const xlate::PipelineDesc &desc, bool fcc)
{
    for (const nir::Shader *shader : desc.shaders) {
        nir::ValidationResult check = nir::validate(*shader);
        if (!check.ok())
            vksim_fatal("invalid shader: " + check.message());
    }
    xlate::TranslateOptions options;
    options.fcc = fcc;
    vptx::Program program = xlate::translate(desc, options);

    // Hit-group records carry 1-based shader ids (0xFFFFFFFF when empty).
    std::vector<vptx::HitGroupRecord> hit_groups;
    for (const xlate::HitGroupDesc &g : desc.hitGroups) {
        vptx::HitGroupRecord rec;
        rec.closestHit =
            g.closestHit >= 0 ? xlate::shaderIdOf(g.closestHit) : -1;
        rec.anyHit = g.anyHit >= 0 ? xlate::shaderIdOf(g.anyHit) : -1;
        rec.intersection =
            g.intersection >= 0 ? xlate::shaderIdOf(g.intersection) : -1;
        hit_groups.push_back(rec);
    }
    std::vector<ShaderId> miss_shaders;
    for (int miss : desc.missShaders)
        miss_shaders.push_back(xlate::shaderIdOf(miss));
    return std::make_shared<const CompiledPipeline>(
        std::move(program), std::move(hit_groups), std::move(miss_shaders),
        fcc);
}

void
Device::uploadShaderBindingTable(RayTracingPipeline *pipeline)
{
    // Serialize the shader binding table to device memory; the trace-ray
    // lowering reads shader ids from here at run time. Ray-query
    // pipelines traverse inline with no SBT indirection, so the device
    // copy stays unallocated (the addresses remain 0).
    if (pipeline->rayQuery())
        return;
    const std::vector<vptx::HitGroupRecord> &hit_groups =
        pipeline->hitGroups();
    if (!hit_groups.empty()) {
        pipeline->sbtHitGroupsAddr = uploadBuffer<vptx::HitGroupRecord>(
            {hit_groups.data(), hit_groups.size()}, "sbt.hitgroups");
    }
    const std::vector<ShaderId> &miss_shaders = pipeline->missShaders();
    if (!miss_shaders.empty()) {
        pipeline->sbtMissAddr = uploadBuffer<ShaderId>(
            {miss_shaders.data(), miss_shaders.size()}, "sbt.miss");
    }
}

RayTracingPipeline
Device::createRayTracingPipeline(const xlate::PipelineDesc &desc, bool fcc)
{
    RayTracingPipeline pipeline;
    pipeline.compiled = translatePipeline(desc, fcc);
    uploadShaderBindingTable(&pipeline);
    return pipeline;
}

Launch
Device::createLaunch(const RayTracingPipeline &pipeline,
                     const DescriptorSet &descriptors, Addr tlas_root,
                     unsigned width, unsigned height, unsigned depth)
{
    return Launch(prepareLaunch(pipeline, descriptors, tlas_root, width,
                                height, depth));
}

vptx::LaunchContext
Device::prepareLaunch(const RayTracingPipeline &pipeline,
                      const DescriptorSet &descriptors, Addr tlas_root,
                      unsigned width, unsigned height, unsigned depth)
{
    vptx::LaunchContext ctx;
    ctx.program = &pipeline.program();
    ctx.uops = &pipeline.compiled->uops();
    ctx.gmem = gmem_.get();
    ctx.launchSize[0] = width;
    ctx.launchSize[1] = height;
    ctx.launchSize[2] = depth;
    ctx.tlasRoot = tlas_root;

    for (unsigned b = 0; b < vptx::kNumDescBindings; ++b)
        ctx.descBase[b] = descriptors.at(b);
    ctx.descBase[vptx::kSbtHitGroupBinding] = pipeline.sbtHitGroupsAddr;
    ctx.descBase[vptx::kSbtMissBinding] = pipeline.sbtMissAddr;

    const Addr threads = ctx.totalThreads();
    ctx.rtStackBase = gmem_->allocate(
        threads * vptx::kRtStackBytesPerThread, 64, "rt.stack");
    ctx.scratchBase = gmem_->allocate(
        threads * vptx::kRtScratchBytesPerThread, 64, "rt.scratch");
    const Addr warps = (threads + kWarpSize - 1) / kWarpSize;
    ctx.fccBase =
        gmem_->allocate(warps * vptx::kFccBytesPerWarp, 64, "rt.fcc");

    ctx.hitGroups = pipeline.hitGroups();
    return ctx;
}

} // namespace vksim
