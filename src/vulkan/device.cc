#include "vulkan/device.h"

#include "nir/validate.h"

namespace vksim {

RayTracingPipeline
Device::translatePipeline(const xlate::PipelineDesc &desc, bool fcc)
{
    RayTracingPipeline pipeline;
    for (const nir::Shader *shader : desc.shaders) {
        nir::ValidationResult check = nir::validate(*shader);
        if (!check.ok())
            vksim_fatal("invalid shader: " + check.message());
    }
    xlate::TranslateOptions options;
    options.fcc = fcc;
    pipeline.fcc = fcc;
    pipeline.program = xlate::translate(desc, options);

    // Hit-group records carry 1-based shader ids (0xFFFFFFFF when empty).
    for (const xlate::HitGroupDesc &g : desc.hitGroups) {
        vptx::HitGroupRecord rec;
        rec.closestHit =
            g.closestHit >= 0 ? xlate::shaderIdOf(g.closestHit) : -1;
        rec.anyHit = g.anyHit >= 0 ? xlate::shaderIdOf(g.anyHit) : -1;
        rec.intersection =
            g.intersection >= 0 ? xlate::shaderIdOf(g.intersection) : -1;
        pipeline.hitGroups.push_back(rec);
    }
    for (int miss : desc.missShaders)
        pipeline.missShaders.push_back(xlate::shaderIdOf(miss));
    return pipeline;
}

void
Device::uploadShaderBindingTable(RayTracingPipeline *pipeline)
{
    // Serialize the shader binding table to device memory; the trace-ray
    // lowering reads shader ids from here at run time.
    if (!pipeline->hitGroups.empty()) {
        pipeline->sbtHitGroupsAddr = uploadBuffer<vptx::HitGroupRecord>(
            {pipeline->hitGroups.data(), pipeline->hitGroups.size()},
            "sbt.hitgroups");
    }
    if (!pipeline->missShaders.empty()) {
        pipeline->sbtMissAddr = uploadBuffer<ShaderId>(
            {pipeline->missShaders.data(), pipeline->missShaders.size()},
            "sbt.miss");
    }
}

RayTracingPipeline
Device::createRayTracingPipeline(const xlate::PipelineDesc &desc, bool fcc)
{
    RayTracingPipeline pipeline = translatePipeline(desc, fcc);
    uploadShaderBindingTable(&pipeline);
    return pipeline;
}

Launch
Device::createLaunch(const RayTracingPipeline &pipeline,
                     const DescriptorSet &descriptors, Addr tlas_root,
                     unsigned width, unsigned height, unsigned depth)
{
    return Launch(prepareLaunch(pipeline, descriptors, tlas_root, width,
                                height, depth));
}

vptx::LaunchContext
Device::prepareLaunch(const RayTracingPipeline &pipeline,
                      const DescriptorSet &descriptors, Addr tlas_root,
                      unsigned width, unsigned height, unsigned depth)
{
    vptx::LaunchContext ctx;
    ctx.program = &pipeline.program;
    ctx.gmem = gmem_.get();
    ctx.launchSize[0] = width;
    ctx.launchSize[1] = height;
    ctx.launchSize[2] = depth;
    ctx.tlasRoot = tlas_root;

    for (unsigned b = 0; b < vptx::kNumDescBindings; ++b)
        ctx.descBase[b] = descriptors.at(b);
    ctx.descBase[vptx::kSbtHitGroupBinding] = pipeline.sbtHitGroupsAddr;
    ctx.descBase[vptx::kSbtMissBinding] = pipeline.sbtMissAddr;

    const Addr threads = ctx.totalThreads();
    ctx.rtStackBase = gmem_->allocate(
        threads * vptx::kRtStackBytesPerThread, 64, "rt.stack");
    ctx.scratchBase = gmem_->allocate(
        threads * vptx::kRtScratchBytesPerThread, 64, "rt.scratch");
    const Addr warps = (threads + kWarpSize - 1) / kWarpSize;
    ctx.fccBase =
        gmem_->allocate(warps * vptx::kFccBytesPerWarp, 64, "rt.fcc");

    ctx.hitGroups = pipeline.hitGroups;
    return ctx;
}

} // namespace vksim
