/**
 * @file
 * Launch trace dump / replay (the artifact's "trace runner" workflow):
 * a dumped trace captures everything a launch needs — the translated
 * VPTX program, the shader binding table, descriptor bases, and the full
 * simulated memory image (serialized acceleration structure, descriptor
 * buffers) — so it can be re-simulated on any machine without the
 * frontend, exactly like the paper's vulkan_rt_runner.
 */

#ifndef VKSIM_VULKAN_TRACE_H
#define VKSIM_VULKAN_TRACE_H

#include <memory>
#include <string>

#include "vptx/context.h"

namespace vksim {

/** Write the launch (program + memory image) to `path`. */
bool dumpTrace(const std::string &path, const vptx::LaunchContext &ctx);

/** A replayable trace: owns the memory image and program. */
struct LoadedTrace
{
    std::unique_ptr<GlobalMemory> gmem;
    std::unique_ptr<vptx::Program> program;
    vptx::LaunchContext ctx; ///< wired to the owned gmem / program
};

/** Load a trace dumped by dumpTrace(); null on failure. */
std::unique_ptr<LoadedTrace> loadTrace(const std::string &path);

} // namespace vksim

#endif // VKSIM_VULKAN_TRACE_H
