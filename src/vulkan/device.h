/**
 * @file
 * A slim Vulkan-like front end (the role Mesa plays in the original
 * system): buffer allocation and upload, acceleration structure building
 * (VK_KHR_acceleration_structure), ray tracing pipeline creation with
 * shader registration (VK_KHR_ray_tracing_pipeline +
 * vkCreateRayTracingPipelinesKHR), descriptor sets, and the
 * vkCmdTraceRaysKHR launch that hands a prepared LaunchContext to either
 * the functional runner or the timed GPU model.
 */

#ifndef VKSIM_VULKAN_DEVICE_H
#define VKSIM_VULKAN_DEVICE_H

#include <memory>
#include <span>

#include "accel/serialize.h"
#include "scene/scene.h"
#include "vptx/context.h"
#include "vptx/uop.h"
#include "xlate/translate.h"

namespace vksim {

/** Descriptor set: binding slot -> device buffer address. */
class DescriptorSet
{
  public:
    void
    bind(unsigned binding, Addr address)
    {
        vksim_assert(binding < vptx::kNumDescBindings);
        bindings_[binding] = address;
    }

    Addr
    at(unsigned binding) const
    {
        return bindings_[binding];
    }

    const std::array<Addr, vptx::kNumDescBindings> &all() const
    {
        return bindings_;
    }

  private:
    std::array<Addr, vptx::kNumDescBindings> bindings_{};
};

/**
 * The immutable host-side product of pipeline translation: the linked
 * VPTX program, its pre-decoded micro-op stream, and the SBT layout
 * tables. The micro-op stream is built exactly once, here, from the
 * program — executors consume it read-only, so one compiled pipeline is
 * shared by every launch, device and concurrent job that uses it (the
 * service artifact cache hands out the same instance). Touches no device
 * memory, which is what makes it cacheable and disk-storable; anything
 * with a device address lives in the RayTracingPipeline handle instead.
 */
class CompiledPipeline
{
  public:
    CompiledPipeline(vptx::Program program,
                     std::vector<vptx::HitGroupRecord> hit_groups,
                     std::vector<ShaderId> miss_shaders, bool fcc)
        : program_(std::move(program)), hitGroups_(std::move(hit_groups)),
          missShaders_(std::move(miss_shaders)), fcc_(fcc), uops_(program_)
    {
    }

    const vptx::Program &program() const { return program_; }
    const vptx::MicroProgram &uops() const { return uops_; }

    /**
     * Stage table: the shader the launch enters. Historically always a
     * raygen shader; a ray-query pipeline enters a compute shader
     * instead and traverses inline with no SBT indirection.
     */
    const vptx::ShaderInfo &entryShader() const
    {
        return program_.entryShader();
    }

    /** Entry is a compute shader using inline ray queries. */
    bool rayQuery() const
    {
        return entryShader().stage == vptx::ShaderStage::Compute;
    }

    /**
     * Any-hit shaders run immediately mid-traversal (suspending the
     * warp in the RT unit) instead of deferred after traversal.
     */
    bool immediateAnyHit() const { return program_.immediateAnyHit; }

    /** Hit-group records with 1-based shader ids. */
    const std::vector<vptx::HitGroupRecord> &hitGroups() const
    {
        return hitGroups_;
    }

    const std::vector<ShaderId> &missShaders() const { return missShaders_; }

    /** Lowered with function call coalescing (Algorithm 3). */
    bool fcc() const { return fcc_; }

  private:
    vptx::Program program_;
    std::vector<vptx::HitGroupRecord> hitGroups_;
    std::vector<ShaderId> missShaders_;
    bool fcc_ = false;
    vptx::MicroProgram uops_; ///< after program_: built from it
};

/**
 * A created ray tracing pipeline: a shared handle to the compiled
 * (device-independent) half plus this device's SBT upload. Cheap to
 * copy — copies share the same CompiledPipeline.
 */
struct RayTracingPipeline
{
    std::shared_ptr<const CompiledPipeline> compiled;
    Addr sbtHitGroupsAddr = 0; ///< device copy of the hit-group table
    Addr sbtMissAddr = 0;

    const vptx::Program &program() const { return compiled->program(); }
    const std::vector<vptx::HitGroupRecord> &hitGroups() const
    {
        return compiled->hitGroups();
    }
    const std::vector<ShaderId> &missShaders() const
    {
        return compiled->missShaders();
    }
    bool fcc() const { return compiled->fcc(); }
    bool rayQuery() const { return compiled->rayQuery(); }
    bool immediateAnyHit() const { return compiled->immediateAnyHit(); }
};

/**
 * Handle to a prepared trace-rays launch (vkCmdTraceRaysKHR recorded into
 * a command buffer). Only Device creates these; consumers reach the
 * underlying LaunchContext through context() when handing it to an
 * executor. Keeping the context behind a handle stops callers from
 * assembling half-initialized LaunchContexts by hand.
 */
class Launch
{
  public:
    Launch() = default;

    vptx::LaunchContext &context() { return ctx_; }
    const vptx::LaunchContext &context() const { return ctx_; }

    unsigned width() const { return ctx_.launchSize[0]; }
    unsigned height() const { return ctx_.launchSize[1]; }
    unsigned depth() const { return ctx_.launchSize[2]; }

  private:
    friend class Device;
    explicit Launch(vptx::LaunchContext ctx) : ctx_(std::move(ctx)) {}

    vptx::LaunchContext ctx_;
};

/** The simulated device. */
class Device
{
  public:
    Device() : gmem_(std::make_unique<GlobalMemory>()) {}

    GlobalMemory &memory() { return *gmem_; }
    const GlobalMemory &memory() const { return *gmem_; }

    /** Allocate a device buffer. */
    Addr
    createBuffer(Addr size, const std::string &label = "buffer")
    {
        return gmem_->allocate(size, 64, label);
    }

    /** Allocate + upload a trivially copyable array. */
    template <typename T>
    Addr
    uploadBuffer(std::span<const T> data, const std::string &label = "buffer")
    {
        Addr addr = createBuffer(data.size_bytes(), label);
        gmem_->write(addr, data.data(), data.size_bytes());
        return addr;
    }

    /** Build BLASes + TLAS for a scene (VK_KHR_acceleration_structure). */
    AccelStruct
    buildAccelerationStructure(const Scene &scene)
    {
        return buildAccelStruct(scene, *gmem_);
    }

    /**
     * Host-only half of pipeline creation: validate the NIR shaders,
     * translate them to one linked VPTX program (Algorithm 1, or
     * Algorithm 3 when `fcc`), fill the hit-group / miss tables, and
     * pre-decode the micro-op stream. The result touches no device
     * memory, so it is device-independent and shareable across devices —
     * the service artifact cache hands one instance to every job.
     */
    static std::shared_ptr<const CompiledPipeline> translatePipeline(
        const xlate::PipelineDesc &desc, bool fcc = false);

    /**
     * Device half of pipeline creation: serialize `pipeline`'s shader
     * binding table into this device's memory, filling
     * sbtHitGroupsAddr / sbtMissAddr.
     */
    void uploadShaderBindingTable(RayTracingPipeline *pipeline);

    /**
     * Create a ray tracing pipeline (vkCreateRayTracingPipelinesKHR):
     * translatePipeline() + uploadShaderBindingTable().
     */
    RayTracingPipeline createRayTracingPipeline(
        const xlate::PipelineDesc &desc, bool fcc = false);

    /**
     * Record a launch (vkCmdTraceRaysKHR): allocates the per-thread
     * trace-ray stacks and scratch, binds descriptor sets and the SBT,
     * and returns the Launch handle the executors consume.
     */
    Launch createLaunch(const RayTracingPipeline &pipeline,
                        const DescriptorSet &descriptors, Addr tlas_root,
                        unsigned width, unsigned height, unsigned depth = 1);

    /**
     * @deprecated Pre-service spelling of createLaunch() returning the
     * raw LaunchContext. Kept for existing direct-model tests; new code
     * should hold the Launch handle instead.
     */
    vptx::LaunchContext prepareLaunch(const RayTracingPipeline &pipeline,
                                      const DescriptorSet &descriptors,
                                      Addr tlas_root, unsigned width,
                                      unsigned height, unsigned depth = 1);

  private:
    std::unique_ptr<GlobalMemory> gmem_;
};

} // namespace vksim

#endif // VKSIM_VULKAN_DEVICE_H
