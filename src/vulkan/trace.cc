#include "vulkan/trace.h"

#include <cstdio>
#include <cstring>

#include "util/log.h"

namespace vksim {

namespace {

// TR2: adds the immediate-any-hit flag and trampoline table.
constexpr char kMagic[8] = {'V', 'K', 'S', 'I', 'M', 'T', 'R', '2'};

struct Writer
{
    std::FILE *f;

    template <typename T>
    void
    pod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        std::fwrite(&v, sizeof(T), 1, f);
    }

    void
    u64(std::uint64_t v)
    {
        pod(v);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        std::fwrite(s.data(), 1, s.size(), f);
    }

    void
    bytes(const void *p, std::size_t n)
    {
        std::fwrite(p, 1, n, f);
    }
};

struct Reader
{
    std::FILE *f;
    bool ok = true;

    template <typename T>
    bool
    pod(T *v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        ok = ok && std::fread(v, sizeof(T), 1, f) == 1;
        return ok;
    }

    bool
    u64(std::uint64_t *v)
    {
        return pod(v);
    }

    bool
    str(std::string *s)
    {
        std::uint64_t n = 0;
        if (!u64(&n) || n > (1u << 20))
            return ok = false;
        s->resize(n);
        ok = ok && std::fread(s->data(), 1, n, f) == n;
        return ok;
    }
};

} // namespace

bool
dumpTrace(const std::string &path, const vptx::LaunchContext &ctx)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warnStr("cannot open trace file " + path);
        return false;
    }
    Writer w{f};
    w.bytes(kMagic, sizeof(kMagic));

    // Launch parameters.
    for (int i = 0; i < 3; ++i)
        w.u64(ctx.launchSize[i]);
    for (unsigned b = 0; b < vptx::kNumDescBindings; ++b)
        w.u64(ctx.descBase[b]);
    w.u64(ctx.rtStackBase);
    w.u64(ctx.scratchBase);
    w.u64(ctx.fccBase);
    w.u64(ctx.tlasRoot);

    // Hit groups.
    w.u64(ctx.hitGroups.size());
    for (const vptx::HitGroupRecord &g : ctx.hitGroups)
        w.pod(g);

    // Program.
    const vptx::Program &prog = *ctx.program;
    w.u64(prog.code.size());
    for (const vptx::Instr &instr : prog.code)
        w.pod(instr);
    w.u64(prog.shaders.size());
    for (const vptx::ShaderInfo &s : prog.shaders) {
        w.str(s.name);
        w.pod(s.stage);
        w.pod(s.entryPc);
        w.pod(s.numRegs);
    }
    w.pod(prog.raygenShader);
    w.pod(prog.immediateAnyHit);
    w.u64(prog.anyHitTrampolines.size());
    for (std::int32_t t : prog.anyHitTrampolines)
        w.pod(t);

    // Memory image (pages sorted so traces are byte-reproducible).
    w.u64(ctx.gmem->brk());
    auto pages = ctx.gmem->snapshotPages();
    w.u64(pages.size());
    for (const auto &[page, data] : pages) {
        w.u64(page);
        w.bytes(data->data(), data->size());
    }
    std::fclose(f);
    return true;
}

std::unique_ptr<LoadedTrace>
loadTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warnStr("cannot open trace file " + path);
        return nullptr;
    }
    Reader r{f};
    char magic[8];
    if (std::fread(magic, 1, 8, f) != 8
        || std::memcmp(magic, kMagic, 8) != 0) {
        warnStr("bad trace magic in " + path);
        std::fclose(f);
        return nullptr;
    }

    auto trace = std::make_unique<LoadedTrace>();
    trace->gmem = std::make_unique<GlobalMemory>();
    trace->program = std::make_unique<vptx::Program>();
    vptx::LaunchContext &ctx = trace->ctx;
    ctx.gmem = trace->gmem.get();
    ctx.program = trace->program.get();

    std::uint64_t v = 0;
    for (int i = 0; i < 3; ++i) {
        r.u64(&v);
        ctx.launchSize[i] = static_cast<std::uint32_t>(v);
    }
    for (unsigned b = 0; b < vptx::kNumDescBindings; ++b)
        r.u64(&ctx.descBase[b]);
    r.u64(&ctx.rtStackBase);
    r.u64(&ctx.scratchBase);
    r.u64(&ctx.fccBase);
    r.u64(&ctx.tlasRoot);

    std::uint64_t count = 0;
    r.u64(&count);
    ctx.hitGroups.resize(count);
    for (auto &g : ctx.hitGroups)
        r.pod(&g);

    r.u64(&count);
    trace->program->code.resize(count);
    for (auto &instr : trace->program->code)
        r.pod(&instr);
    r.u64(&count);
    trace->program->shaders.resize(count);
    for (auto &s : trace->program->shaders) {
        r.str(&s.name);
        r.pod(&s.stage);
        r.pod(&s.entryPc);
        r.pod(&s.numRegs);
    }
    r.pod(&trace->program->raygenShader);
    r.pod(&trace->program->immediateAnyHit);
    r.u64(&count);
    trace->program->anyHitTrampolines.resize(count);
    for (auto &t : trace->program->anyHitTrampolines)
        r.pod(&t);

    std::uint64_t brk = 0;
    r.u64(&brk);
    std::uint64_t num_pages = 0;
    r.u64(&num_pages);
    std::vector<std::uint8_t> page_data(GlobalMemory::kPageSize);
    for (std::uint64_t p = 0; p < num_pages && r.ok; ++p) {
        std::uint64_t page = 0;
        r.u64(&page);
        r.ok = r.ok
               && std::fread(page_data.data(), 1, page_data.size(), f)
                      == page_data.size();
        if (r.ok)
            trace->gmem->write(page << GlobalMemory::kPageBits,
                               page_data.data(), page_data.size());
    }
    trace->gmem->setBrk(brk);
    std::fclose(f);
    if (!r.ok) {
        warnStr("truncated trace file " + path);
        return nullptr;
    }
    return trace;
}

} // namespace vksim
