#include "dram/fabric.h"

#include <algorithm>

#include "util/log.h"

namespace vksim {

// --- DramChannel ---------------------------------------------------------

DramChannel::DramChannel(const DramConfig &config, bool perfect,
                         StatGroup *stats)
    : config_(config), perfect_(perfect),
      modernTimings_(config.bankGroups > 0 || config.tCcdL > 0
                     || config.tCcdS > 0 || config.tRrd > 0
                     || config.tRefi > 0),
      stats_(stats)
{
    banks_.resize(config_.banks);
    if (config_.bankGroups > 0)
        groupNextColumnAt_.resize(config_.bankGroups, 0);
    if (config_.tRefi > 0)
        nextRefreshAt_ = config_.tRefi;
}

unsigned
DramChannel::bankOf(Addr addr) const
{
    return static_cast<unsigned>((addr / config_.rowBytes) % config_.banks);
}

Addr
DramChannel::rowOf(Addr addr) const
{
    return addr / (config_.rowBytes * config_.banks);
}

unsigned
DramChannel::groupOf(unsigned bank) const
{
    // Row-interleaved consecutive banks land in different groups.
    return bank % config_.bankGroups;
}

std::uint64_t
DramChannel::earliestIssue(const MemRequest &r) const
{
    // Exact while the channel state is frozen (between real cycles):
    // every constraint below can only be *raised* by a real cycle, and
    // nextEventCycle() forces one at each constraint-changing tick
    // (issue, retirement, refresh). With the modern knobs off this is
    // exactly the seed readiness rule (bank.readyAt).
    const Bank &bank = banks_[bankOf(r.addr)];
    std::uint64_t t = bank.readyAt;
    if (modernTimings_) {
        t = std::max(t, nextColumnAt_);
        if (!groupNextColumnAt_.empty())
            t = std::max(t, groupNextColumnAt_[groupOf(bankOf(r.addr))]);
        if (bank.openRow != rowOf(r.addr))
            t = std::max(t, nextActivateAt_);
    }
    return t;
}

void
DramChannel::processRefresh()
{
    // All-bank refresh: close every row and hold the banks for tRFC.
    // Processed by real cycle() calls only — nextEventCycle() reports
    // the tREFI boundary, so idle-skip runs a real cycle exactly at the
    // refresh tick and a fast-forwarded run mutates bank state on the
    // same tick a lock-step run would.
    while (nextRefreshAt_ != 0 && nowDram_ >= nextRefreshAt_) {
        for (Bank &b : banks_) {
            b.openRow = ~Addr(0);
            b.readyAt = std::max(b.readyAt, nowDram_ + config_.tRfc);
        }
        stats_->counter("refreshes").inc();
        nextRefreshAt_ += config_.tRefi;
    }
}

void
DramChannel::enqueue(const MemRequest &req)
{
    vksim_assert(canAccept());
    queue_.push_back(req);
}

void
DramChannel::cycle(Cycle now)
{
    ++nowDram_;
    stats_->counter("cycles").inc();

    if (config_.tRefi > 0)
        processRefresh();

    // Retire inflight transfers.
    for (std::size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].doneAt <= nowDram_) {
            if (!inflight_[i].req.write)
                completed_.push_back(inflight_[i].req);
            inflight_[i] = inflight_.back();
            inflight_.pop_back();
        } else {
            ++i;
        }
    }

    bool has_pending = !queue_.empty() || !inflight_.empty();
    if (has_pending)
        stats_->counter("cycles_with_pending").inc();

    // Bank-level parallelism sample: banks with work in flight.
    unsigned busy_banks = 0;
    for (const Bank &b : banks_)
        if (b.readyAt > nowDram_)
            ++busy_banks;
    if (busy_banks > 0) {
        stats_->counter("blp_samples").inc();
        stats_->counter("blp_sum").inc(busy_banks);
    }
    if (busFreeAt_ > nowDram_)
        stats_->counter("data_bus_busy").inc();

    if (queue_.empty())
        return;

    if (perfect_) {
        // Zero-latency DRAM: service everything immediately.
        while (!queue_.empty()) {
            if (!queue_.front().write)
                completed_.push_back(queue_.front());
            stats_->counter("requests").inc();
            queue_.pop_front();
        }
        return;
    }

    // Ready-bank pre-check: if even the least-busy bank cannot accept a
    // column this tick (or the tCCDS window is still closed), the
    // FR-FCFS scan below cannot pick anything — skip both O(queue)
    // passes. O(banks) against a queue that is often 4x deeper.
    {
        std::uint64_t min_ready = ~std::uint64_t(0);
        for (const Bank &b : banks_)
            min_ready = std::min(min_ready, b.readyAt);
        if (modernTimings_)
            min_ready = std::max(min_ready, nextColumnAt_);
        if (min_ready > nowDram_)
            return;
    }

    // FR-FCFS: prefer the oldest row hit on a ready bank, else the oldest
    // request whose bank is ready (readiness folds in the bank-group
    // column windows, tRRD and refresh holds via earliestIssue()).
    auto ready = [&](const MemRequest &r) {
        return earliestIssue(r) <= nowDram_;
    };
    auto row_hit = [&](const MemRequest &r) {
        return banks_[bankOf(r.addr)].openRow == rowOf(r.addr);
    };

    auto pick = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
        if (ready(*it) && row_hit(*it)) {
            pick = it;
            break;
        }
    if (pick == queue_.end())
        for (auto it = queue_.begin(); it != queue_.end(); ++it)
            if (ready(*it)) {
                pick = it;
                break;
            }
    if (pick == queue_.end())
        return;

    MemRequest req = *pick;
    queue_.erase(pick);
    unsigned bank_index = bankOf(req.addr);
    Bank &bank = banks_[bank_index];
    bool hit = bank.openRow == rowOf(req.addr);
    unsigned access_latency = config_.tCas;
    if (!hit) {
        access_latency += bank.openRow == ~Addr(0)
                              ? config_.tRcd
                              : config_.tRp + config_.tRcd;
        bank.openRow = rowOf(req.addr);
        stats_->counter("row_misses").inc();
        if (config_.tRrd > 0)
            nextActivateAt_ = nowDram_ + config_.tRrd;
        if (timeline_)
            timeline_->instant("dram.ch" + std::to_string(channelId_)
                                   + ".bank"
                                   + std::to_string(bank_index),
                               "row_activate", now);
    } else {
        stats_->counter("row_hits").inc();
    }
    stats_->counter("requests").inc();

    // Column-to-column windows: a short one against every group (tCCDS)
    // and a long one against this request's own group (tCCDL).
    if (config_.tCcdS > 0)
        nextColumnAt_ = nowDram_ + config_.tCcdS;
    if (!groupNextColumnAt_.empty())
        groupNextColumnAt_[groupOf(bank_index)] = nowDram_ + config_.tCcdL;

    // Data transfer occupies the shared bus after the column access.
    std::uint64_t data_start =
        std::max(nowDram_ + access_latency, busFreeAt_);
    std::uint64_t data_end = data_start + config_.burstCycles;
    busFreeAt_ = data_end;
    bank.readyAt = data_end;
    inflight_.push_back({req, data_end});
}

void
DramChannel::tickQuiescent()
{
    // Must mirror cycle()'s per-tick preamble exactly: same counters,
    // same order. The retire loop and the FR-FCFS scan are omitted
    // because the caller proved (nextEventCycle()) they would find
    // nothing — on such a tick cycle() is this preamble and a scan
    // that picks no request.
    ++nowDram_;
    stats_->counter("cycles").inc();
    if (!queue_.empty() || !inflight_.empty())
        stats_->counter("cycles_with_pending").inc();
    unsigned busy_banks = 0;
    for (const Bank &b : banks_)
        if (b.readyAt > nowDram_)
            ++busy_banks;
    if (busy_banks > 0) {
        stats_->counter("blp_samples").inc();
        stats_->counter("blp_sum").inc(busy_banks);
    }
    if (busFreeAt_ > nowDram_)
        stats_->counter("data_bus_busy").inc();
}

Cycle
DramChannel::nextEventCycle() const
{
    if (perfect_)
        return queue_.empty() ? kNoPendingEvent : nowDram_ + 1;
    Cycle next = kNoPendingEvent;
    // Refresh mutates digested bank state, so the tREFI boundary is an
    // event even on an otherwise empty channel: idle-skip must run a
    // real cycle exactly there or a fast-forwarded run would process
    // the refresh late with different readyAt stamps.
    if (nextRefreshAt_ != 0)
        next = std::min(next,
                        std::max<Cycle>(nextRefreshAt_, nowDram_ + 1));
    // Soonest in-flight retirement (transfers already due fire on the
    // next tick, because retirement happens after ++nowDram_).
    for (const Inflight &f : inflight_)
        next = std::min(next, std::max<Cycle>(f.doneAt, nowDram_ + 1));
    // Soonest tick a queued request clears its bank, column-window and
    // activate constraints for FR-FCFS (exact between real cycles; see
    // earliestIssue()).
    for (const MemRequest &r : queue_)
        next = std::min(next,
                        std::max<Cycle>(earliestIssue(r), nowDram_ + 1));
    return next;
}

bool
DramChannel::hasRequest(Addr sector, bool write) const
{
    for (const MemRequest &r : queue_)
        if (r.addr == sector && r.write == write)
            return true;
    for (const Inflight &f : inflight_)
        if (f.req.addr == sector && f.req.write == write)
            return true;
    return false;
}

namespace {

void
mixRequest(check::Digest &d, const MemRequest &r)
{
    d.mix(r.addr);
    d.mix(r.write);
    d.mix(static_cast<std::uint64_t>(r.origin));
    d.mix(r.smId);
    d.mix(r.tag);
}

} // namespace

void
DramChannel::checkInvariants(check::Reporter &rep,
                             const std::string &path) const
{
    if (queue_.size() > config_.queueSize)
        rep.report(path + ".queue",
                   std::to_string(queue_.size())
                       + " queued requests, limit "
                       + std::to_string(config_.queueSize));
    // Without refresh every readyAt stamp comes from a data transfer, so
    // no bank can be busy past the bus; a refresh hold (tRFC) is the one
    // legitimate exception.
    if (config_.tRefi == 0)
        for (const Bank &b : banks_)
            if (b.readyAt > busFreeAt_)
                rep.report(path + ".banks",
                           "bank ready at " + std::to_string(b.readyAt)
                               + " after the data bus frees at "
                               + std::to_string(busFreeAt_));
    for (const Inflight &f : inflight_)
        if (f.doneAt <= nowDram_)
            rep.report(path + ".inflight",
                       "transfer done at " + std::to_string(f.doneAt)
                           + " still in flight at DRAM cycle "
                           + std::to_string(nowDram_));
}

std::uint64_t
DramChannel::stateDigest() const
{
    check::Digest d;
    for (const MemRequest &r : queue_)
        mixRequest(d, r);
    for (const Bank &b : banks_) {
        d.mix(b.openRow);
        d.mix(b.readyAt);
    }
    // inflight_ uses swap-remove, so its order is history-dependent even
    // between identical runs sampled at different periods: XOR-fold.
    std::uint64_t fold = 0;
    for (const Inflight &f : inflight_) {
        check::Digest e;
        mixRequest(e, f.req);
        e.mix(f.doneAt);
        fold ^= e.value();
    }
    d.mix(fold);
    d.mix(inflight_.size());
    d.mix(nowDram_);
    d.mix(busFreeAt_);
    // The bank-group / activate / refresh windows join the digest only
    // when some modern knob is on, so seed-configuration digest traces
    // stay byte-identical.
    if (modernTimings_) {
        d.mix(nextColumnAt_);
        for (std::uint64_t g : groupNextColumnAt_)
            d.mix(g);
        d.mix(nextActivateAt_);
        d.mix(nextRefreshAt_);
    }
    return d.value();
}

namespace {

void
putRequest(serial::Writer &w, const MemRequest &r)
{
    w.u64(r.addr);
    w.b(r.write);
    w.u8(static_cast<std::uint8_t>(r.origin));
    w.u32(r.smId);
    w.u64(r.tag);
}

MemRequest
getRequest(serial::Reader &r)
{
    MemRequest req;
    req.addr = r.u64();
    req.write = r.b();
    req.origin = static_cast<AccessOrigin>(r.u8());
    req.smId = r.u32();
    req.tag = r.u64();
    return req;
}

} // namespace

void
DramChannel::saveState(serial::Writer &w) const
{
    w.u64(queue_.size());
    for (const MemRequest &r : queue_)
        putRequest(w, r);
    w.u64(banks_.size());
    for (const Bank &b : banks_) {
        w.u64(b.openRow);
        w.u64(b.readyAt);
    }
    w.u64(inflight_.size());
    for (const Inflight &f : inflight_) {
        putRequest(w, f.req);
        w.u64(f.doneAt);
    }
    w.u64(completed_.size());
    for (const MemRequest &r : completed_)
        putRequest(w, r);
    w.u64(nowDram_);
    w.u64(busFreeAt_);
    w.u64(nextColumnAt_);
    w.u64(groupNextColumnAt_.size());
    for (std::uint64_t g : groupNextColumnAt_)
        w.u64(g);
    w.u64(nextActivateAt_);
    w.u64(nextRefreshAt_);
}

void
DramChannel::loadState(serial::Reader &r)
{
    queue_.clear();
    std::uint64_t num_queued = r.u64();
    for (std::uint64_t i = 0; i < num_queued; ++i)
        queue_.push_back(getRequest(r));
    std::uint64_t num_banks = r.u64();
    vksim_assert(num_banks == banks_.size());
    for (Bank &b : banks_) {
        b.openRow = r.u64();
        b.readyAt = r.u64();
    }
    inflight_.clear();
    std::uint64_t num_inflight = r.u64();
    for (std::uint64_t i = 0; i < num_inflight; ++i) {
        Inflight f;
        f.req = getRequest(r);
        f.doneAt = r.u64();
        inflight_.push_back(f);
    }
    completed_.clear();
    std::uint64_t num_done = r.u64();
    for (std::uint64_t i = 0; i < num_done; ++i)
        completed_.push_back(getRequest(r));
    nowDram_ = r.u64();
    busFreeAt_ = r.u64();
    nextColumnAt_ = r.u64();
    std::uint64_t num_groups = r.u64();
    vksim_assert(num_groups == groupNextColumnAt_.size());
    for (std::uint64_t &g : groupNextColumnAt_)
        g = r.u64();
    nextActivateAt_ = r.u64();
    nextRefreshAt_ = r.u64();
}

// --- MemFabric ------------------------------------------------------------

MemFabric::MemFabric(const FabricConfig &config, unsigned num_sms)
    : config_(config), dramClock_(config.dramClockRatio)
{
    partitions_.resize(config_.numPartitions);
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        CacheConfig slice = config_.l2;
        slice.name = "l2." + std::to_string(p);
        partitions_[p].l2 = std::make_unique<Cache>(slice);
        partitions_[p].dram = std::make_unique<DramChannel>(
            config_.dram, config_.perfectMem, &dramStats_);
    }
    responses_.resize(num_sms);
    respCursor_.resize(num_sms, 0);
}

unsigned
MemFabric::partitionOf(Addr addr) const
{
    // Pure function of (addr, config): no state to digest or serialize.
    Addr block = addr / 256;
    if (config_.interleave == L2Interleave::XorFold)
        block ^= (block >> 7) ^ (block >> 13);
    return static_cast<unsigned>(block % config_.numPartitions);
}

bool
MemFabric::canAccept(unsigned sm) const
{
    // Simple per-partition inbound queue bound.
    return true;
}

void
MemFabric::inject(const MemRequest &req, Cycle now)
{
    Partition &p = partitions_[partitionOf(req.addr)];
    p.inbound.emplace_back(now + config_.icntLatency, req);
}

void
MemFabric::respond(const MemRequest &req, Cycle now)
{
    responses_[req.smId].emplace_back(now + config_.icntLatency, req);
}

void
MemFabric::partitionCycle(Partition &p, Cycle now)
{
    // Service up to one inbound request per cycle (L2 port).
    if (!p.inbound.empty() && p.inbound.front().first <= now) {
        MemRequest req = p.inbound.front().second;

        // Writes always pass through to DRAM, and a read that is neither
        // resident nor mergeable into an outstanding MSHR will allocate
        // one and enqueue. If the DRAM queue can't take that request,
        // hold it at the port *before* touching the L2: the old
        // access-then-cancel retry loop re-ran Cache::access every cycle,
        // inflating access/hit/miss counters for a single request.
        bool needs_dram = req.write
                          || (!p.l2->contains(req.addr)
                              && !p.l2->mshrPending(req.addr));
        if (needs_dram && !p.dram->canAccept())
            return;

        std::uint64_t cookie = p.nextCookie;
        CacheOutcome outcome = p.l2->access(req.addr, req.write,
                                            req.origin, cookie, now);
        bool consumed = true;
        switch (outcome) {
          case CacheOutcome::Hit:
            if (req.write) {
                // Write-through to DRAM.
                p.dram->enqueue(req);
            } else {
                respond(req, now + p.l2->config().latency);
            }
            break;
          case CacheOutcome::MissNew:
            p.dram->enqueue(req);
            if (!req.write) {
                ++p.nextCookie;
                p.pendingMiss.emplace(cookie, req);
            }
            break;
          case CacheOutcome::MissMerged:
            ++p.nextCookie;
            p.pendingMiss.emplace(cookie, req);
            break;
          case CacheOutcome::Stall:
            consumed = false;
            break;
        }
        if (consumed)
            p.inbound.pop_front();
    }
}

void
MemFabric::setTimeline(TimelineShard *shard)
{
    timeline_ = shard;
    for (unsigned p = 0; p < partitions_.size(); ++p)
        partitions_[p].dram->setTimeline(shard, p);
}

void
MemFabric::cycle(Cycle now)
{
    // Trim drained responses the clock has passed: no digest of cycle
    // `now` or later can need an entry that became deliverable at or
    // before `now` (the lock-step queue would have popped it by now).
    for (unsigned sm = 0; sm < responses_.size(); ++sm) {
        auto &q = responses_[sm];
        std::size_t &cur = respCursor_[sm];
        while (cur > 0 && q.front().first <= now) {
            q.pop_front();
            --cur;
        }
    }

    for (Partition &p : partitions_)
        partitionCycle(p, now);

    if (timeline_ && timeline_->sampleDue(now)) {
        for (unsigned p = 0; p < partitions_.size(); ++p) {
            const std::string prefix = "part" + std::to_string(p);
            timeline_->counter(
                prefix + ".inbound", now,
                static_cast<double>(partitions_[p].inbound.size()));
            timeline_->counter(
                prefix + ".l2_mshrs", now,
                static_cast<double>(partitions_[p].l2->mshrsInUse()));
        }
    }

    unsigned ticks = dramClock_.advance();
    for (unsigned t = 0; t < ticks; ++t) {
        for (Partition &p : partitions_) {
            p.dram->cycle(now);
            for (const MemRequest &req : p.dram->completed()) {
                // Fill the L2 and answer every merged miss.
                std::vector<std::uint64_t> targets =
                    p.l2->fill(req.addr, now);
                for (std::uint64_t cookie : targets) {
                    auto it = p.pendingMiss.find(cookie);
                    if (it == p.pendingMiss.end())
                        continue;
                    respond(it->second, now + p.l2->config().latency);
                    p.pendingMiss.erase(it);
                }
            }
            p.dram->clearCompleted();
        }
    }
}

bool
MemFabric::quiescentCycle(Cycle now)
{
    // An inbound request that would be *consumed* this cycle mutates L2
    // or DRAM state — only a request held at the port (needs DRAM, DRAM
    // queue full) makes partitionCycle a provable no-op.
    for (const Partition &p : partitions_) {
        if (p.inbound.empty() || p.inbound.front().first > now)
            continue;
        const MemRequest &req = p.inbound.front().second;
        bool needs_dram = req.write
                          || (!p.l2->contains(req.addr)
                              && !p.l2->mshrPending(req.addr));
        if (!needs_dram || p.dram->canAccept())
            return false;
    }

    // Counter-track samples must be emitted by the real path.
    if (timeline_ && timeline_->sampleDue(now))
        return false;

    // Every DRAM tick that would land in this core cycle must be event
    // free on every channel (no retirement, no issuable request).
    unsigned ticks = dramClock_.peek();
    if (ticks > 0) {
        for (const Partition &p : partitions_) {
            Cycle next = p.dram->nextEventCycle();
            if (next != kNoPendingEvent
                && next <= p.dram->dramNow() + ticks)
                return false;
        }
    }

    // Commit: advance the clock crossing and replay the counters.
    unsigned committed = dramClock_.advance();
    for (unsigned t = 0; t < committed; ++t)
        for (Partition &p : partitions_)
            p.dram->tickQuiescent();
    return true;
}

std::vector<MemRequest>
MemFabric::drainResponses(unsigned sm, Cycle now)
{
    std::vector<MemRequest> out;
    auto &q = responses_[sm];
    std::size_t &cur = respCursor_[sm];
    while (cur < q.size() && q[cur].first <= now) {
        out.push_back(q[cur].second);
        ++cur;
    }
    return out;
}

bool
MemFabric::idle() const
{
    for (const Partition &p : partitions_)
        if (!p.inbound.empty() || !p.pendingMiss.empty()
            || !p.dram->idle())
            return false;
    for (unsigned sm = 0; sm < responses_.size(); ++sm)
        if (respCursor_[sm] < responses_[sm].size())
            return false;
    return true;
}

void
MemFabric::checkInvariants(check::Reporter &rep, bool deep) const
{
    for (unsigned pi = 0; pi < partitions_.size(); ++pi) {
        const Partition &p = partitions_[pi];
        const std::string path = "fabric.part" + std::to_string(pi);
        p.l2->checkInvariants(rep, path + ".l2", deep);
        p.dram->checkInvariants(rep, path + ".dram");

        // Every merged L2 read miss is parked in pendingMiss under its
        // cookie, and nothing else is: the two books must balance.
        std::uint64_t targets = p.l2->mshrTargetTotal();
        if (targets != p.pendingMiss.size())
            rep.report(path + ".pending_miss",
                       std::to_string(targets)
                           + " L2 MSHR targets vs "
                           + std::to_string(p.pendingMiss.size())
                           + " pending-miss records");

        // An L2 read MSHR without a DRAM request would wait forever: the
        // miss was enqueued when the MSHR was allocated and the fill
        // erases the MSHR when the DRAM transfer retires, so at a cycle
        // barrier the two must pair up exactly.
        for (Addr addr : p.l2->mshrAddrs())
            if (!p.dram->hasRequest(addr, false))
                rep.report(path + ".l2.mshrs",
                           "read MSHR for sector "
                               + std::to_string(addr)
                               + " has no matching DRAM request");
    }
}

std::uint64_t
MemFabric::stateDigest(Cycle now) const
{
    check::Digest d;
    for (const Partition &p : partitions_) {
        d.mix(p.l2->stateDigest());
        d.mix(p.dram->stateDigest());
        for (const auto &[ready, req] : p.inbound) {
            d.mix(ready);
            mixRequest(d, req);
        }
        d.mix(p.inbound.size());
        // pendingMiss is a hash map: fold order-insensitively.
        std::uint64_t fold = 0;
        for (const auto &[cookie, req] : p.pendingMiss) {
            check::Digest e;
            e.mix(cookie);
            mixRequest(e, req);
            fold ^= e.value();
        }
        d.mix(fold);
        d.mix(p.nextCookie);
    }
    for (const auto &q : responses_) {
        // Only responses the lock-step queue would still hold after the
        // cycle-`now` barrier: every SM drains at exactly the ready
        // cycle, so entries with ready <= now are gone by then whether
        // or not an epoch worker has drained them yet.
        std::size_t live = 0;
        for (const auto &[ready, req] : q) {
            if (ready <= now)
                continue;
            d.mix(ready);
            mixRequest(d, req);
            ++live;
        }
        d.mix(live);
    }
    return d.value();
}

void
MemFabric::saveState(serial::Writer &w) const
{
    w.u64(partitions_.size());
    for (const Partition &p : partitions_) {
        p.l2->saveState(w);
        p.dram->saveState(w);
        w.u64(p.inbound.size());
        for (const auto &[ready, req] : p.inbound) {
            w.u64(ready);
            putRequest(w, req);
        }
        // pendingMiss is a hash map: write sorted by cookie.
        std::vector<std::uint64_t> cookies;
        cookies.reserve(p.pendingMiss.size());
        for (const auto &[cookie, req] : p.pendingMiss)
            cookies.push_back(cookie);
        std::sort(cookies.begin(), cookies.end());
        w.u64(cookies.size());
        for (std::uint64_t cookie : cookies) {
            w.u64(cookie);
            putRequest(w, p.pendingMiss.at(cookie));
        }
        w.u64(p.nextCookie);
    }
    // Full response deques, drained-but-untrimmed entries included: the
    // digest of a replayed cycle must still see them after restore.
    w.u64(responses_.size());
    for (unsigned sm = 0; sm < responses_.size(); ++sm) {
        const auto &q = responses_[sm];
        w.u64(q.size());
        for (const auto &[ready, req] : q) {
            w.u64(ready);
            putRequest(w, req);
        }
        w.u64(respCursor_[sm]);
    }
    w.u64(dramClock_.accumBits());
    dramStats_.saveState(w);
}

void
MemFabric::loadState(serial::Reader &r)
{
    std::uint64_t num_parts = r.u64();
    vksim_assert(num_parts == partitions_.size());
    for (Partition &p : partitions_) {
        p.l2->loadState(r);
        p.dram->loadState(r);
        p.inbound.clear();
        std::uint64_t num_inbound = r.u64();
        for (std::uint64_t i = 0; i < num_inbound; ++i) {
            Cycle ready = r.u64();
            p.inbound.emplace_back(ready, getRequest(r));
        }
        p.pendingMiss.clear();
        std::uint64_t num_pending = r.u64();
        for (std::uint64_t i = 0; i < num_pending; ++i) {
            std::uint64_t cookie = r.u64();
            p.pendingMiss.emplace(cookie, getRequest(r));
        }
        p.nextCookie = r.u64();
    }
    std::uint64_t num_sms = r.u64();
    vksim_assert(num_sms == responses_.size());
    for (unsigned sm = 0; sm < responses_.size(); ++sm) {
        auto &q = responses_[sm];
        q.clear();
        std::uint64_t num_resp = r.u64();
        for (std::uint64_t i = 0; i < num_resp; ++i) {
            Cycle ready = r.u64();
            q.emplace_back(ready, getRequest(r));
        }
        respCursor_[sm] = r.u64();
    }
    dramClock_.restoreAccumBits(r.u64());
    dramStats_.loadState(r);
}

StatGroup &
MemFabric::l2Stats(unsigned partition)
{
    return partitions_[partition].l2->stats();
}

std::uint64_t
MemFabric::l2Total(const std::string &counter) const
{
    std::uint64_t total = 0;
    for (const Partition &p : partitions_)
        total += p.l2->stats().get(counter);
    return total;
}

} // namespace vksim
