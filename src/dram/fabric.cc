#include "dram/fabric.h"

#include <algorithm>

#include "util/log.h"

namespace vksim {

// --- DramChannel ---------------------------------------------------------

DramChannel::DramChannel(const DramConfig &config, bool perfect,
                         StatGroup *stats)
    : config_(config), perfect_(perfect), stats_(stats)
{
    banks_.resize(config_.banks);
}

unsigned
DramChannel::bankOf(Addr addr) const
{
    return static_cast<unsigned>((addr / config_.rowBytes) % config_.banks);
}

Addr
DramChannel::rowOf(Addr addr) const
{
    return addr / (config_.rowBytes * config_.banks);
}

void
DramChannel::enqueue(const MemRequest &req)
{
    vksim_assert(canAccept());
    queue_.push_back(req);
}

void
DramChannel::tick(std::vector<MemRequest> *done, Cycle core_now)
{
    ++nowDram_;
    stats_->counter("cycles").inc();

    // Retire inflight transfers.
    for (std::size_t i = 0; i < inflight_.size();) {
        if (inflight_[i].doneAt <= nowDram_) {
            if (!inflight_[i].req.write)
                done->push_back(inflight_[i].req);
            inflight_[i] = inflight_.back();
            inflight_.pop_back();
        } else {
            ++i;
        }
    }

    bool has_pending = !queue_.empty() || !inflight_.empty();
    if (has_pending)
        stats_->counter("cycles_with_pending").inc();

    // Bank-level parallelism sample: banks with work in flight.
    unsigned busy_banks = 0;
    for (const Bank &b : banks_)
        if (b.readyAt > nowDram_)
            ++busy_banks;
    if (busy_banks > 0) {
        stats_->counter("blp_samples").inc();
        stats_->counter("blp_sum").inc(busy_banks);
    }
    if (busFreeAt_ > nowDram_)
        stats_->counter("data_bus_busy").inc();

    if (queue_.empty())
        return;

    if (perfect_) {
        // Zero-latency DRAM: service everything immediately.
        while (!queue_.empty()) {
            if (!queue_.front().write)
                done->push_back(queue_.front());
            stats_->counter("requests").inc();
            queue_.pop_front();
        }
        return;
    }

    // FR-FCFS: prefer the oldest row hit on a ready bank, else the oldest
    // request whose bank is ready.
    auto ready = [&](const MemRequest &r) {
        return banks_[bankOf(r.addr)].readyAt <= nowDram_;
    };
    auto row_hit = [&](const MemRequest &r) {
        return banks_[bankOf(r.addr)].openRow == rowOf(r.addr);
    };

    auto pick = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it)
        if (ready(*it) && row_hit(*it)) {
            pick = it;
            break;
        }
    if (pick == queue_.end())
        for (auto it = queue_.begin(); it != queue_.end(); ++it)
            if (ready(*it)) {
                pick = it;
                break;
            }
    if (pick == queue_.end())
        return;

    MemRequest req = *pick;
    queue_.erase(pick);
    Bank &bank = banks_[bankOf(req.addr)];
    bool hit = bank.openRow == rowOf(req.addr);
    unsigned access_latency = config_.tCas;
    if (!hit) {
        access_latency += bank.openRow == ~Addr(0)
                              ? config_.tRcd
                              : config_.tRp + config_.tRcd;
        bank.openRow = rowOf(req.addr);
        stats_->counter("row_misses").inc();
        if (timeline_)
            timeline_->instant("dram.ch" + std::to_string(channelId_)
                                   + ".bank"
                                   + std::to_string(bankOf(req.addr)),
                               "row_activate", core_now);
    } else {
        stats_->counter("row_hits").inc();
    }
    stats_->counter("requests").inc();

    // Data transfer occupies the shared bus after the column access.
    std::uint64_t data_start =
        std::max(nowDram_ + access_latency, busFreeAt_);
    std::uint64_t data_end = data_start + config_.burstCycles;
    busFreeAt_ = data_end;
    bank.readyAt = data_end;
    inflight_.push_back({req, data_end});
}

// --- MemFabric ------------------------------------------------------------

MemFabric::MemFabric(const FabricConfig &config, unsigned num_sms)
    : config_(config)
{
    partitions_.resize(config_.numPartitions);
    for (unsigned p = 0; p < config_.numPartitions; ++p) {
        CacheConfig slice = config_.l2;
        slice.name = "l2." + std::to_string(p);
        partitions_[p].l2 = std::make_unique<Cache>(slice);
        partitions_[p].dram = std::make_unique<DramChannel>(
            config_.dram, config_.perfectMem, &dramStats_);
    }
    responses_.resize(num_sms);
}

unsigned
MemFabric::partitionOf(Addr addr) const
{
    return static_cast<unsigned>((addr / 256) % config_.numPartitions);
}

bool
MemFabric::canAccept(unsigned sm) const
{
    // Simple per-partition inbound queue bound.
    return true;
}

void
MemFabric::inject(const MemRequest &req, Cycle now)
{
    Partition &p = partitions_[partitionOf(req.addr)];
    p.inbound.emplace_back(now + config_.icntLatency, req);
}

void
MemFabric::respond(const MemRequest &req, Cycle now)
{
    responses_[req.smId].emplace_back(now + config_.icntLatency, req);
}

void
MemFabric::partitionCycle(Partition &p, Cycle now)
{
    // Service up to one inbound request per cycle (L2 port).
    if (!p.inbound.empty() && p.inbound.front().first <= now) {
        MemRequest req = p.inbound.front().second;
        std::uint64_t cookie = p.nextCookie;
        CacheOutcome outcome = p.l2->access(req.addr, req.write,
                                            req.origin, cookie, now);
        bool consumed = true;
        switch (outcome) {
          case CacheOutcome::Hit:
            if (req.write) {
                // Write-through to DRAM.
                if (p.dram->canAccept())
                    p.dram->enqueue(req);
                else
                    consumed = false;
            } else {
                respond(req, now + p.l2->config().latency);
            }
            break;
          case CacheOutcome::MissNew:
            if (p.dram->canAccept()) {
                p.dram->enqueue(req);
                if (!req.write) {
                    ++p.nextCookie;
                    p.pendingMiss.emplace(cookie, req);
                }
            } else {
                // DRAM queue full: abandon and retry the access next cycle.
                consumed = false;
                if (!req.write)
                    p.l2->cancelMshr(req.addr);
            }
            break;
          case CacheOutcome::MissMerged:
            ++p.nextCookie;
            p.pendingMiss.emplace(cookie, req);
            break;
          case CacheOutcome::Stall:
            consumed = false;
            break;
        }
        if (consumed)
            p.inbound.pop_front();
    }
}

void
MemFabric::setTimeline(TimelineShard *shard)
{
    timeline_ = shard;
    for (unsigned p = 0; p < partitions_.size(); ++p)
        partitions_[p].dram->setTimeline(shard, p);
}

void
MemFabric::cycle(Cycle now)
{
    for (Partition &p : partitions_)
        partitionCycle(p, now);

    if (timeline_ && timeline_->sampleDue(now)) {
        for (unsigned p = 0; p < partitions_.size(); ++p) {
            const std::string prefix = "part" + std::to_string(p);
            timeline_->counter(
                prefix + ".inbound", now,
                static_cast<double>(partitions_[p].inbound.size()));
            timeline_->counter(
                prefix + ".l2_mshrs", now,
                static_cast<double>(partitions_[p].l2->mshrsInUse()));
        }
    }

    dramTickAccum_ += config_.dramClockRatio;
    while (dramTickAccum_ >= 1.0) {
        dramTickAccum_ -= 1.0;
        for (Partition &p : partitions_) {
            std::vector<MemRequest> done;
            p.dram->tick(&done, now);
            for (const MemRequest &req : done) {
                // Fill the L2 and answer every merged miss.
                std::vector<std::uint64_t> targets =
                    p.l2->fill(req.addr, now);
                for (std::uint64_t cookie : targets) {
                    auto it = p.pendingMiss.find(cookie);
                    if (it == p.pendingMiss.end())
                        continue;
                    respond(it->second, now + p.l2->config().latency);
                    p.pendingMiss.erase(it);
                }
            }
        }
    }
}

std::vector<MemRequest>
MemFabric::drainResponses(unsigned sm, Cycle now)
{
    std::vector<MemRequest> out;
    auto &q = responses_[sm];
    while (!q.empty() && q.front().first <= now) {
        out.push_back(q.front().second);
        q.pop_front();
    }
    return out;
}

bool
MemFabric::idle() const
{
    for (const Partition &p : partitions_)
        if (!p.inbound.empty() || !p.pendingMiss.empty()
            || !p.dram->idle())
            return false;
    for (const auto &q : responses_)
        if (!q.empty())
            return false;
    return true;
}

StatGroup &
MemFabric::l2Stats(unsigned partition)
{
    return partitions_[partition].l2->stats();
}

std::uint64_t
MemFabric::l2Total(const std::string &counter) const
{
    std::uint64_t total = 0;
    for (const Partition &p : partitions_)
        total += p.l2->stats().get(counter);
    return total;
}

} // namespace vksim
