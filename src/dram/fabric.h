/**
 * @file
 * The off-core memory system: interconnect, memory partitions (each an
 * L2 slice + DRAM channel), and a banked DRAM model with FR-FCFS
 * scheduling, row-buffer state, and the utilization/efficiency/locality
 * statistics behind the paper's Figure 16 and the memory discussion of
 * Sec. VI-C.
 *
 * The DRAM runs in its own clock domain (memory clock / core clock ratio
 * from Table III) via a ClockDomain descriptor (src/core/clockdomain.h)
 * the engine scheduler can inspect.
 */

#ifndef VKSIM_DRAM_FABRIC_H
#define VKSIM_DRAM_FABRIC_H

#include <deque>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "core/clockdomain.h"
#include "core/clockedunit.h"
#include "util/timeline.h"

namespace vksim {

/** One request travelling through the memory system (32 B sector). */
struct MemRequest
{
    Addr addr = 0;
    bool write = false;
    AccessOrigin origin = AccessOrigin::Shader;
    unsigned smId = 0;
    std::uint64_t tag = 0; ///< requester cookie, echoed in the response
};

/**
 * DRAM channel timing (in DRAM clock cycles).
 *
 * The bank-group / refresh block below is the HBM/GDDR6-style upgrade
 * (arXiv 1810.07269): all knobs default to 0 = off, under which the
 * scheduler behaves bit-identically to the seed flat-bank model.
 */
struct DramConfig
{
    unsigned banks = 16;
    Addr rowBytes = 2048;
    unsigned tRcd = 20;       ///< activate-to-column
    unsigned tRp = 20;        ///< precharge
    unsigned tCas = 20;       ///< column access
    unsigned burstCycles = 2; ///< bus cycles per 32 B transfer
    unsigned queueSize = 64;

    /**
     * Bank groups (0 = no grouping). Bank b belongs to group
     * b % bankGroups, so consecutive row-interleaved banks land in
     * different groups (the favorable striping).
     */
    unsigned bankGroups = 0;
    unsigned tCcdL = 0; ///< column-to-column, same bank group
    unsigned tCcdS = 0; ///< column-to-column, different bank group
    unsigned tRrd = 0;  ///< activate-to-activate across banks
    /**
     * Refresh: every tREFI ticks all banks close their rows and are
     * unavailable for tRFC ticks (0 = no refresh). Refresh is processed
     * by real cycle() calls only; nextEventCycle() reports the refresh
     * tick so idle-skip never silently crosses one.
     */
    unsigned tRefi = 0;
    unsigned tRfc = 0;
};

/** How the fabric hashes addresses onto L2 partitions. */
enum class L2Interleave : std::uint8_t
{
    /** Seed policy: consecutive 256 B blocks round-robin partitions. */
    Linear256 = 0,
    /**
     * XOR-fold the upper block bits into the partition index, breaking
     * the power-of-two stride camping the linear hash suffers on
     * BVH-node strides (Accel-Sim lineage partition hash).
     */
    XorFold = 1
};

/** Fabric configuration. */
struct FabricConfig
{
    unsigned numPartitions = 6;
    unsigned icntLatency = 8;   ///< one-way interconnect latency (core clk)
    CacheConfig l2;             ///< per-slice geometry (size = slice size)
    DramConfig dram;
    double dramClockRatio = 3500.0 / 1365.0;
    bool perfectMem = false;    ///< zero-latency DRAM (paper Fig. 15)
    L2Interleave interleave = L2Interleave::Linear256;
};

/** A banked DRAM channel with FR-FCFS scheduling. */
class DramChannel : public ClockedUnit
{
  public:
    DramChannel(const DramConfig &config, bool perfect, StatGroup *stats);

    bool
    canAccept() const
    {
        return queue_.size() < config_.queueSize;
    }

    void enqueue(const MemRequest &req);

    /**
     * One DRAM-clock tick; completed reads land in completed().
     * `now` is the *core*-clock cycle, used only to timestamp timeline
     * events so DRAM tracks share the trace's clock.
     */
    void cycle(Cycle now) override;

    /** Reads retired by cycle() calls since the last clearCompleted(). */
    const std::vector<MemRequest> &completed() const { return completed_; }
    void clearCompleted() { completed_.clear(); }

    /**
     * A counter-only tick: advances the DRAM clock and the per-cycle
     * utilization statistics exactly as cycle() would, without the
     * scheduler scan. Only legal when the caller has proved (via
     * nextEventCycle()) that a real tick could neither retire a
     * transfer nor issue a queued request — a "quiescent" tick is then
     * bit-identical to a real one.
     */
    void tickQuiescent();

    /**
     * ClockedUnit: earliest DRAM tick (this channel's own clock) at
     * which state can change — the soonest in-flight retirement or the
     * soonest tick a queued request finds its bank ready. Requests and
     * retirements already due fire on the *next* tick (nowDram_ + 1).
     */
    Cycle nextEventCycle() const override;

    /** Current tick of this channel's clock (nextEventCycle's frame). */
    std::uint64_t dramNow() const { return nowDram_; }

    /** Timeline sink: row-activate instants on per-bank tracks. */
    void
    setTimeline(TimelineShard *shard, unsigned channel_id)
    {
        timeline_ = shard;
        channelId_ = channel_id;
    }

    bool
    idle() const override
    {
        return queue_.empty() && inflight_.empty();
    }

    /**
     * True if a request for `sector` with the given direction is waiting
     * in the queue or in flight (used by the L2-MSHR cross-check).
     */
    bool hasRequest(Addr sector, bool write) const;

    /** Validate queue bounds and bank/bus/inflight timing ordering. */
    void checkInvariants(check::Reporter &rep,
                         const std::string &path) const;

    /** Order-insensitive digest of queue, bank and inflight state. */
    std::uint64_t stateDigest() const;

    /**
     * Serialize / restore channel state (checkpointing). The inflight
     * list uses swap-remove, so its *container order* is behaviorally
     * relevant (the retire scan walks it front to back) and is written
     * verbatim. The shared DRAM StatGroup is serialized once at the
     * fabric level, not here.
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Bank
    {
        Addr openRow = ~Addr(0);
        std::uint64_t readyAt = 0;
    };

    struct Inflight
    {
        MemRequest req;
        std::uint64_t doneAt;
    };

    unsigned bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;
    unsigned groupOf(unsigned bank) const;
    /** Earliest tick request `r` could issue, given current bank, CCD,
     *  RRD and row state (exact while the channel state is frozen). */
    std::uint64_t earliestIssue(const MemRequest &r) const;
    void processRefresh();

    DramConfig config_;
    bool perfect_;
    /** Any bank-group / activate / refresh constraint enabled. */
    bool modernTimings_;
    StatGroup *stats_;
    std::deque<MemRequest> queue_;
    std::vector<Bank> banks_;
    std::vector<Inflight> inflight_;
    std::vector<MemRequest> completed_;
    std::uint64_t nowDram_ = 0;
    std::uint64_t busFreeAt_ = 0;
    /** Earliest tick the next column command may issue to any group
     *  (tCCDS) / to each specific group (tCCDL). Always <= now when the
     *  knobs are off, so the seed scheduler is untouched. */
    std::uint64_t nextColumnAt_ = 0;
    std::vector<std::uint64_t> groupNextColumnAt_;
    std::uint64_t nextActivateAt_ = 0; ///< tRRD window
    std::uint64_t nextRefreshAt_ = 0;  ///< next tREFI boundary (0 = off)
    TimelineShard *timeline_ = nullptr;
    unsigned channelId_ = 0;
};

/**
 * Interconnect + partitions. The owning GPU model calls cycle() once per
 * core clock and drains per-SM responses.
 */
class MemFabric : public ClockedUnit
{
  public:
    MemFabric(const FabricConfig &config, unsigned num_sms);

    /** Space in the injection path for SM `sm`? */
    bool canAccept(unsigned sm) const;

    /** Inject a request (an L1 / RT-cache miss or a write-through). */
    void inject(const MemRequest &req, Cycle now);

    /** Advance one core-clock cycle. */
    void cycle(Cycle now) override;

    /**
     * The idle-skip fast path: advance one core cycle touching only
     * per-cycle counters, *if* this cycle is provably a pure counter
     * replay of cycle(now) — no inbound request would be consumed, no
     * timeline sample is due, and no DRAM tick in this core cycle could
     * retire a transfer or issue a queued request. Returns true when
     * the quiescent cycle was committed (cycle(now) must NOT run too),
     * false when nothing was done and the caller must run cycle(now).
     */
    bool quiescentCycle(Cycle now);

    /**
     * Responses ready for SM `sm` at `now`. Drained entries are only
     * *marked* consumed (per-SM cursor) and linger in the queue until
     * the fabric clock passes their ready cycle: under epoch stepping
     * an SM drains ahead of the fabric replay, and the state digest of
     * an earlier replay cycle must still see what the lock-step queue
     * held then. The cursor makes this safe to call from SM workers —
     * each touches only its own queue.
     */
    std::vector<MemRequest> drainResponses(unsigned sm, Cycle now);

    /** Any undrained response queued for SM `sm` (ready or not). */
    bool
    hasResponse(unsigned sm) const
    {
        return respCursor_[sm] < responses_[sm].size();
    }

    /** All queues empty (for drain detection). */
    bool idle() const override;

    /**
     * ClockedUnit: the fabric's conservative event estimate in core
     * cycles. The exact skip decision lives in quiescentCycle(); this
     * answers only "anything pending at all?" for the active-set logic.
     */
    Cycle nextEventCycle() const override
    {
        return idle() ? kNoPendingEvent : 0;
    }

    /** The core→DRAM clock-domain descriptor (first-class; the engine
     *  scheduler reads the ratio from here, not from FabricConfig). */
    const ClockDomain &dramClock() const { return dramClock_; }

    StatGroup &l2Stats(unsigned partition);
    StatGroup &dramStats() { return dramStats_; }
    const StatGroup &dramStats() const { return dramStats_; }

    /** Aggregate L2 counter over all slices. */
    std::uint64_t l2Total(const std::string &counter) const;

    unsigned numPartitions() const { return config_.numPartitions; }

    /**
     * Timeline sink (the fabric's own shard; the fabric only mutates
     * state at the single-threaded cycle barrier): sampled per-partition
     * queue-depth / L2-MSHR counter tracks plus DRAM bank events.
     */
    void setTimeline(TimelineShard *shard);

    /**
     * Validate cross-layer bookkeeping at a cycle barrier: per-partition
     * L2 MSHR limits, Σ L2 read-MSHR targets == pendingMiss entries, and
     * every read MSHR backed by a matching DRAM request (queued or in
     * flight). `deep` additionally scans L2 tag arrays for duplicates.
     */
    void checkInvariants(check::Reporter &rep, bool deep) const;

    /**
     * Order-insensitive digest of all partition + response state *as of
     * core cycle `now`*: only responses still undeliverable at `now`
     * (ready > now) are folded in, which is exactly what the lock-step
     * queue holds after the cycle-`now` barrier. This keeps the digest
     * independent of how far ahead of the fabric replay the SM workers
     * have already drained (epoch stepping).
     */
    std::uint64_t stateDigest(Cycle now) const;

    /**
     * Serialize / restore the full fabric: every partition's L2 slice,
     * DRAM channel, inbound queue and pending-miss table (written sorted
     * by cookie), the per-SM response queues *including* drained-but-
     * untrimmed entries plus their cursors, the core→DRAM clock-crossing
     * accumulator (exact FP bits), and the shared DRAM statistics.
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Partition
    {
        std::unique_ptr<Cache> l2;
        std::unique_ptr<DramChannel> dram;
        /// Requests travelling to the partition (ready at `readyAt`).
        std::deque<std::pair<Cycle, MemRequest>> inbound;
        /// Pending L2 misses keyed by the cookie given to the L2 MSHRs.
        std::unordered_map<std::uint64_t, MemRequest> pendingMiss;
        std::uint64_t nextCookie = 1;
    };

    unsigned partitionOf(Addr addr) const;
    void partitionCycle(Partition &p, Cycle now);
    void respond(const MemRequest &req, Cycle now);

    FabricConfig config_;
    std::vector<Partition> partitions_;
    /// Per-SM response queues (ready cycle, request).
    std::vector<std::deque<std::pair<Cycle, MemRequest>>> responses_;
    /// Per-SM count of drained (consumed but not yet trimmed) entries
    /// at the front of the matching responses_ deque; see
    /// drainResponses().
    std::vector<std::size_t> respCursor_;
    /// Core→DRAM clock crossing (was a bare fractional accumulator).
    ClockDomain dramClock_;
    StatGroup dramStats_{"dram"};
    TimelineShard *timeline_ = nullptr;
};

} // namespace vksim

#endif // VKSIM_DRAM_FABRIC_H
