/**
 * @file
 * The NIR-to-VPTX translator (the paper's NIR-to-PTX translator,
 * Sec. III-B2).
 *
 * Most NIR instructions map to one or a few VPTX instructions; the
 * traceRayEXT intrinsic expands into the paper's Algorithm 1 — traverseAS
 * followed by a delayed intersection/any-hit loop with if-else-if shader
 * dispatch, a closest-hit/miss dispatch, and endTraceRay — or, when FCC
 * is enabled, Algorithm 3 with getNextCoalescedCall.
 */

#ifndef VKSIM_XLATE_TRANSLATE_H
#define VKSIM_XLATE_TRANSLATE_H

#include "nir/nir.h"
#include "vptx/isa.h"

namespace vksim::xlate {

/** Hit group: shader *indices* into PipelineDesc::shaders (-1 = none). */
struct HitGroupDesc
{
    int closestHit = -1;
    int anyHit = -1;
    int intersection = -1;
};

/**
 * Everything vkCreateRayTracingPipelinesKHR (or, for ray-query compute
 * pipelines, vkCreateComputePipelines) provides the translator. Exactly
 * one of `raygen` / `compute` must be set; `missShaders` is required for
 * raygen pipelines and unused for compute ones (ray queries resolve
 * misses inline, with no SBT indirection).
 */
struct PipelineDesc
{
    std::vector<const nir::Shader *> shaders;
    int raygen = -1;
    int compute = -1; ///< ray-query entry (mutually exclusive with raygen)
    std::vector<int> missShaders; ///< at least one for raygen pipelines
    std::vector<HitGroupDesc> hitGroups;

    /**
     * Run any-hit shaders immediately mid-traversal (suspension model)
     * instead of deferring them to the post-traversal resolution loop.
     */
    bool immediateAnyHit = false;

    /** The entry shader index (raygen or compute). */
    int entry() const { return raygen >= 0 ? raygen : compute; }
};

/** Translation options (case studies). */
struct TranslateOptions
{
    bool fcc = false; ///< lower traceRay per Algorithm 3 (FCC)
};

/** Shader id (1-based, as stored in the serialized SBT) of index `i`. */
inline ShaderId
shaderIdOf(int index)
{
    return index + 1;
}

/** Translate a pipeline into one linked VPTX program. */
vptx::Program translate(const PipelineDesc &pipeline,
                        const TranslateOptions &options = {});

/**
 * Content digest of everything that determines the compiled pipeline:
 * every shader's IR (walked recursively), the raygen / miss / hit-group
 * tables, the lowering mode (`fcc`), and the micro-op encoding version
 * (vptx::kUopEncodingVersion — translation pre-decodes the micro-op
 * stream, so its encoding is part of the artifact's identity). Two
 * pipelines with equal digests translate to identical vptx::Programs
 * and micro-op streams, so the service artifact cache keys on this.
 */
std::uint64_t digestPipeline(const PipelineDesc &pipeline, bool fcc);

} // namespace vksim::xlate

#endif // VKSIM_XLATE_TRANSLATE_H
