#include "xlate/translate.h"

#include <algorithm>
#include <map>

#include "check/check.h"
#include "util/log.h"
#include "vptx/context.h"
#include "vptx/rtstack.h"
#include "vptx/uop.h"

namespace vksim::xlate {

namespace {

using vptx::Instr;
using vptx::Opcode;
using vptx::Program;
using namespace vptx::frame;

/** Scratch registers appended after each shader's NIR values. */
constexpr int kNumTemps = 24;

/** Placeholder for branch targets patched at label binding. */
constexpr std::uint32_t kPatch = 0xDEADBEEFu;

class Translator
{
  public:
    Translator(const PipelineDesc &pipe, const TranslateOptions &opts)
        : pipe_(pipe), opts_(opts)
    {
    }

    Program
    run()
    {
        vksim_assert((pipe_.raygen >= 0) != (pipe_.compute >= 0));
        if (pipe_.raygen >= 0)
            vksim_assert(!pipe_.missShaders.empty());

        // Collect the dispatch chains once: every distinct any-hit and
        // intersection shader, and every distinct closest-hit shader.
        // Immediate-mode any-hit shaders run mid-traversal through the
        // trampolines instead, so they never appear in the deferred loop.
        for (const HitGroupDesc &g : pipe_.hitGroups) {
            if (g.anyHit >= 0 && !pipe_.immediateAnyHit)
                addUnique(deferredChain_, g.anyHit);
            if (g.intersection >= 0)
                addUnique(deferredChain_, g.intersection);
            if (g.closestHit >= 0)
                addUnique(closestHitChain_, g.closestHit);
        }

        for (std::size_t i = 0; i < pipe_.shaders.size(); ++i)
            emitShader(static_cast<int>(i));

        // Immediate any-hit: one trampoline (`call any_hit; exit`) per
        // hit group carrying an any-hit shader. The RT unit's suspension
        // micro-program starts a one-lane mini-warp here so the shader's
        // Ret has a frame to pop and the warp exits deterministically.
        if (pipe_.immediateAnyHit) {
            for (const HitGroupDesc &g : pipe_.hitGroups) {
                if (g.anyHit < 0) {
                    prog_.anyHitTrampolines.push_back(-1);
                    continue;
                }
                vptx::ShaderInfo info;
                info.name = "anyhit_trampoline."
                            + std::to_string(prog_.anyHitTrampolines.size());
                info.stage = vptx::ShaderStage::AnyHit;
                info.entryPc = pc();
                info.numRegs = 1;
                std::uint32_t at = emitOp(Opcode::Call, -1, -1, -1, -1, 0);
                callFixups_.emplace_back(at, g.anyHit);
                emitOp(Opcode::Exit);
                prog_.anyHitTrampolines.push_back(
                    static_cast<std::int32_t>(prog_.shaders.size()));
                prog_.shaders.push_back(std::move(info));
            }
        }

        // Patch calls now that every entry pc is known.
        for (const auto &[pc, callee] : callFixups_)
            prog_.code[pc].target =
                prog_.shaders[static_cast<std::size_t>(callee)].entryPc;

        prog_.raygenShader = pipe_.entry();
        prog_.immediateAnyHit = pipe_.immediateAnyHit;
        return std::move(prog_);
    }

  private:
    static void
    addUnique(std::vector<int> &v, int idx)
    {
        for (int e : v)
            if (e == idx)
                return;
        v.push_back(idx);
    }

    // --- emission helpers ---------------------------------------------

    std::uint32_t
    pc() const
    {
        return static_cast<std::uint32_t>(prog_.code.size());
    }

    std::uint32_t
    emit(Instr instr)
    {
        prog_.code.push_back(instr);
        return pc() - 1;
    }

    std::uint32_t
    emitOp(Opcode op, int dst = -1, int s0 = -1, int s1 = -1, int s2 = -1,
           std::uint64_t imm = 0, unsigned size = 4)
    {
        Instr i;
        i.op = op;
        i.dst = static_cast<std::int16_t>(dst);
        i.src0 = static_cast<std::int16_t>(s0);
        i.src1 = static_cast<std::int16_t>(s1);
        i.src2 = static_cast<std::int16_t>(s2);
        i.imm = imm;
        i.size = static_cast<std::uint8_t>(size);
        return emit(i);
    }

    /** Temp register allocator (per shader). */
    int
    temp()
    {
        vksim_assert(tempNext_ < tempBase_ + kNumTemps);
        return tempNext_++;
    }

    void
    resetTemps()
    {
        tempNext_ = tempBase_;
    }

    int
    movImm(std::uint64_t v)
    {
        int t = temp();
        emitOp(Opcode::MovImm, t, -1, -1, -1, v);
        return t;
    }

    // --- shader emission -------------------------------------------------

    void
    emitShader(int index)
    {
        const nir::Shader &sh = *pipe_.shaders[static_cast<std::size_t>(index)];
        vptx::ShaderInfo info;
        info.name = sh.name;
        info.stage = sh.stage;
        info.entryPc = pc();
        tempBase_ = sh.numValues;
        tempNext_ = tempBase_;
        info.numRegs = static_cast<std::uint16_t>(sh.numValues + kNumTemps);
        curRegs_ = info.numRegs;

        loopRegions_.clear();
        lowerBlock(sh.body, nullptr);

        if (sh.stage == vptx::ShaderStage::RayGen
            || sh.stage == vptx::ShaderStage::Compute)
            emitOp(Opcode::Exit);
        else
            emitOp(Opcode::Ret);

        info.numRegs = compactRegisters(info.entryPc, pc());
        prog_.shaders.push_back(std::move(info));
    }

    /**
     * Linear-scan register compaction over one shader's code range.
     * NIR values map 1:1 to registers during lowering, which wastes the
     * register file (real compilers allocate); this pass computes live
     * ranges in linear pc order — conservatively extending any range
     * that touches a loop to the loop's end, so loop-carried variables
     * stay live across back edges — and renames registers to a compact
     * set. Returns the new register count (the warp-occupancy limiter).
     */
    std::uint16_t
    compactRegisters(std::uint32_t start_pc, std::uint32_t end_pc)
    {
        struct Range
        {
            std::uint32_t first = 0;
            std::uint32_t last = 0;
        };
        std::map<int, Range> ranges;
        auto touch = [&](int reg, std::uint32_t at) {
            if (reg < 0)
                return;
            auto [it, inserted] = ranges.try_emplace(reg, Range{at, at});
            if (!inserted) {
                it->second.first = std::min(it->second.first, at);
                it->second.last = std::max(it->second.last, at);
            }
        };
        for (std::uint32_t p = start_pc; p < end_pc; ++p) {
            const Instr &i = prog_.code[p];
            touch(i.dst, p);
            touch(i.src0, p);
            touch(i.src1, p);
            touch(i.src2, p);
        }

        // Loop-carried liveness: a register whose first event inside a
        // loop is a *read* carries a value across the back edge (either
        // loop-carried or defined before the loop), so it must stay live
        // for the whole loop. Registers re-defined before every in-loop
        // use keep their plain linear range. A same-instruction dst==src
        // counts as a read first (the old value is consumed).
        for (auto [ls, le] : loopRegions_) {
            std::map<int, bool> first_is_def;
            for (std::uint32_t p = ls; p < le; ++p) {
                const Instr &i = prog_.code[p];
                for (int s : {static_cast<int>(i.src0),
                              static_cast<int>(i.src1),
                              static_cast<int>(i.src2)})
                    if (s >= 0)
                        first_is_def.try_emplace(s, false);
                if (i.dst >= 0)
                    first_is_def.try_emplace(i.dst, true);
            }
            for (auto [reg, is_def] : first_is_def) {
                if (is_def)
                    continue;
                Range &r = ranges.at(reg);
                r.first = std::min(r.first, ls);
                r.last = std::max(r.last, le);
            }
        }

        // Linear scan.
        std::vector<std::pair<int, Range>> order(ranges.begin(),
                                                 ranges.end());
        std::sort(order.begin(), order.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.first < b.second.first;
                  });
        std::map<int, int> remap;
        std::vector<std::uint32_t> reg_free_at; // per new register
        for (const auto &[reg, r] : order) {
            int assigned = -1;
            for (std::size_t n = 0; n < reg_free_at.size(); ++n)
                if (reg_free_at[n] < r.first) {
                    assigned = static_cast<int>(n);
                    break;
                }
            if (assigned < 0) {
                assigned = static_cast<int>(reg_free_at.size());
                reg_free_at.push_back(0);
            }
            reg_free_at[static_cast<std::size_t>(assigned)] = r.last;
            remap[reg] = assigned;
        }

        auto apply = [&](std::int16_t &field) {
            if (field >= 0)
                field = static_cast<std::int16_t>(remap.at(field));
        };
        auto num_regs = static_cast<std::uint16_t>(reg_free_at.size());
        for (std::uint32_t p = start_pc; p < end_pc; ++p) {
            Instr &i = prog_.code[p];
            apply(i.dst);
            apply(i.src0);
            apply(i.src1);
            apply(i.src2);
            // Window bumps reflect the caller's compacted register count.
            if (i.op == Opcode::Call)
                i.imm = num_regs;
        }
        return std::max<std::uint16_t>(num_regs, 1);
    }

    /** True when the node (recursively) contains a loop break. */
    static bool
    containsBreak(const std::vector<nir::Node> &block)
    {
        for (const nir::Node &n : block) {
            switch (n.kind) {
              case nir::Node::Kind::Break:
              case nir::Node::Kind::BreakIf:
                return true;
              case nir::Node::Kind::If:
                if (containsBreak(n.thenBlock) || containsBreak(n.elseBlock))
                    return true;
                break;
              case nir::Node::Kind::Loop:
                break; // breaks inside a nested loop bind to it
              default:
                break;
            }
        }
        return false;
    }

    /**
     * Lower a block. `break_patches` collects pcs of instructions whose
     * target (and reconvergence point) is the innermost loop's exit.
     */
    void
    lowerBlock(const std::vector<nir::Node> &block,
               std::vector<std::uint32_t> *break_patches)
    {
        for (const nir::Node &node : block) {
            switch (node.kind) {
              case nir::Node::Kind::Instr:
                lowerInstr(node.instr);
                break;

              case nir::Node::Kind::If: {
                bool breaks = containsBreak(node.thenBlock)
                              || containsBreak(node.elseBlock);
                std::uint32_t bz =
                    emitOp(Opcode::BraZ, -1, node.cond);
                prog_.code[bz].target = kPatch;
                lowerBlock(node.thenBlock, break_patches);
                std::uint32_t jmp = kPatch;
                if (!node.elseBlock.empty()) {
                    jmp = emitOp(Opcode::Jmp);
                    prog_.code[jmp].target = kPatch;
                    prog_.code[bz].target = pc();
                    lowerBlock(node.elseBlock, break_patches);
                    prog_.code[jmp].target = pc();
                } else {
                    prog_.code[bz].target = pc();
                }
                if (breaks) {
                    // Reconvergence must move to the loop exit: a taken
                    // break leaves the if without passing its end.
                    vksim_assert(break_patches != nullptr);
                    break_patches->push_back(bz | kReconvOnly);
                } else {
                    prog_.code[bz].reconv = pc();
                }
                break;
              }

              case nir::Node::Kind::Loop: {
                std::uint32_t start = pc();
                std::vector<std::uint32_t> breaks;
                lowerBlock(node.body, &breaks);
                std::uint32_t jmp = emitOp(Opcode::Jmp);
                prog_.code[jmp].target = start;
                std::uint32_t exit = pc();
                loopRegions_.emplace_back(start, exit);
                for (std::uint32_t b : breaks) {
                    bool reconv_only = (b & kReconvOnly) != 0;
                    std::uint32_t at = b & ~kReconvOnly;
                    if (!reconv_only)
                        prog_.code[at].target = exit;
                    prog_.code[at].reconv = exit;
                }
                break;
              }

              case nir::Node::Kind::Break: {
                vksim_assert(break_patches != nullptr);
                std::uint32_t j = emitOp(Opcode::Jmp);
                prog_.code[j].target = kPatch;
                break_patches->push_back(j);
                break;
              }

              case nir::Node::Kind::BreakIf: {
                vksim_assert(break_patches != nullptr);
                std::uint32_t b = emitOp(Opcode::Bra, -1, node.cond);
                prog_.code[b].target = kPatch;
                break_patches->push_back(b);
                break;
              }
            }
        }
    }

    /** Marker bit for break-patch entries that only set reconv. */
    static constexpr std::uint32_t kReconvOnly = 0x80000000u;

    void
    lowerInstr(const nir::Instr &in)
    {
        using nir::Op;
        auto s = [&](int i) { return in.srcs[static_cast<std::size_t>(i)]; };

        switch (in.op) {
          case Op::ConstI:
          case Op::ConstF:
            emitOp(Opcode::MovImm, in.dst, -1, -1, -1, in.imm);
            return;
          case Op::Mov:
            emitOp(Opcode::Mov, in.dst, s(0));
            return;
          case Op::Select:
            emitOp(Opcode::Select, in.dst, s(0), s(1), s(2));
            return;
          case Op::LoadGlobal:
            emitOp(Opcode::Ld, in.dst, s(0), -1, -1, in.imm, in.size);
            return;
          case Op::StoreGlobal:
            emitOp(Opcode::St, -1, s(0), s(1), -1, in.imm, in.size);
            return;
          case Op::LoadLaunchId:
            emitOp(Opcode::LoadLaunchId, in.dst, -1, -1, -1, in.imm);
            return;
          case Op::LoadLaunchSize:
            emitOp(Opcode::LoadLaunchSize, in.dst, -1, -1, -1, in.imm);
            return;
          case Op::RtAllocMem:
            emitOp(Opcode::RtAllocMem, in.dst, -1, -1, -1, in.imm);
            return;
          case Op::FrameAddr:
            emitOp(Opcode::RtFrameAddr, in.dst);
            return;
          case Op::DescBase:
            emitOp(Opcode::DescBase, in.dst, -1, -1, -1, in.imm);
            return;
          case Op::DeferredEntryAddr: {
            resetTemps();
            int tf = temp();
            int tcur = temp();
            emitOp(Opcode::RtFrameAddr, tf);
            emitOp(Opcode::Ld, tcur, tf, -1, -1, kCurrentDeferred, 4);
            int tstride = movImm(kDeferredStride);
            int tmulv = temp();
            emitOp(Opcode::Mul, tmulv, tcur, tstride);
            int tbase = movImm(kDeferredBase);
            int tsum = temp();
            emitOp(Opcode::Add, tsum, tf, tmulv);
            emitOp(Opcode::Add, in.dst, tsum, tbase);
            return;
          }
          case Op::ReportIntersection:
            emitOp(Opcode::ReportIntersection, -1, s(0));
            return;
          case Op::CommitAnyHit:
            emitOp(Opcode::CommitAnyHit);
            return;
          case Op::TraceRay:
            lowerTraceRay(in);
            return;
          case Op::RayQuery:
            lowerRayQuery(in);
            return;
          case Op::RayQueryEnd:
            emitOp(Opcode::EndTraceRay);
            return;
          default:
            break;
        }

        // Plain 1:1 ALU mapping.
        static const std::map<Op, Opcode> kAluMap = {
            {Op::IAdd, Opcode::Add},     {Op::ISub, Opcode::Sub},
            {Op::IMul, Opcode::Mul},     {Op::IAnd, Opcode::And},
            {Op::IOr, Opcode::Or},       {Op::IXor, Opcode::Xor},
            {Op::IShl, Opcode::Shl},     {Op::IShr, Opcode::Shr},
            {Op::IEq, Opcode::ISetEq},   {Op::INe, Opcode::ISetNe},
            {Op::ILt, Opcode::ISetLt},   {Op::IGe, Opcode::ISetGe},
            {Op::FAdd, Opcode::FAdd},    {Op::FSub, Opcode::FSub},
            {Op::FMul, Opcode::FMul},    {Op::FDiv, Opcode::FDiv},
            {Op::FMin, Opcode::FMin},    {Op::FMax, Opcode::FMax},
            {Op::FAbs, Opcode::FAbs},    {Op::FNeg, Opcode::FNeg},
            {Op::FFloor, Opcode::FFloor},{Op::FLt, Opcode::FSetLt},
            {Op::FLe, Opcode::FSetLe},   {Op::FGt, Opcode::FSetGt},
            {Op::FGe, Opcode::FSetGe},   {Op::FEq, Opcode::FSetEq},
            {Op::FNe, Opcode::FSetNe},   {Op::FSqrt, Opcode::FSqrt},
            {Op::FRsqrt, Opcode::FRsqrt},{Op::FSin, Opcode::FSin},
            {Op::FCos, Opcode::FCos},    {Op::I2F, Opcode::I2F},
            {Op::U2F, Opcode::U2F},      {Op::F2I, Opcode::F2I},
            {Op::F2U, Opcode::F2U},
        };
        auto it = kAluMap.find(in.op);
        vksim_assert(it != kAluMap.end());
        int s1 = in.srcs.size() > 1 ? s(1) : -1;
        emitOp(it->second, in.dst, s(0), s1);
    }

    /** Emit a call to shader `index`, recording the fixup. */
    void
    emitCall(int index)
    {
        std::uint32_t at = emitOp(Opcode::Call, -1, -1, -1, -1, curRegs_);
        callFixups_.emplace_back(at, index);
    }

    /** If (sid == id) call shader; emits the guarded call of the chain. */
    void
    emitGuardedCall(int t_sid, std::uint64_t id_value, int shader_index,
                    bool default_any_hit = false)
    {
        int tk = movImm(id_value);
        int tp = temp();
        emitOp(Opcode::ISetEq, tp, t_sid, tk);
        std::uint32_t bz = emitOp(Opcode::BraZ, -1, tp);
        if (default_any_hit)
            emitOp(Opcode::CommitAnyHit);
        else
            emitCall(shader_index);
        prog_.code[bz].target = pc();
        prog_.code[bz].reconv = pc();
        // Free the two temps for the next chain link.
        tempNext_ -= 2;
    }

    /**
     * The traceRayEXT expansion: Algorithm 1 (delayed intersection and
     * any-hit execution) or Algorithm 3 (FCC).
     */
    void
    lowerTraceRay(const nir::Instr &in)
    {
        auto s = [&](int i) { return in.srcs[static_cast<std::size_t>(i)]; };
        resetTemps();

        // Push a frame and store the ray into it.
        emitOp(Opcode::RtPushFrame);
        int tf = temp();
        emitOp(Opcode::RtFrameAddr, tf);
        const Addr ray_offsets[9] = {kRayOriginX, kRayOriginY, kRayOriginZ,
                                     kRayTmin,    kRayDirX,    kRayDirY,
                                     kRayDirZ,    kRayTmax,    kRayFlags};
        for (int i = 0; i < 9; ++i)
            emitOp(Opcode::St, -1, tf, s(i), -1, ray_offsets[i], 4);

        emitOp(Opcode::TraverseAS);

        // Deferred intersection / any-hit loop.
        int tidx = temp();
        emitOp(Opcode::MovImm, tidx, -1, -1, -1, 0);
        int tone = movImm(1);
        int loop_temp_floor = tempNext_;

        std::uint32_t loop_start = pc();
        std::vector<std::uint32_t> loop_breaks;
        int t_sid = temp(); // persists across the loop body

        if (opts_.fcc) {
            emitOp(Opcode::GetNextCoalescedCall, t_sid, tidx);
            // sid == -1 (64-bit) terminates the loop.
            int tk = movImm(0xFFFFFFFFFFFFFFFFull);
            int tp = temp();
            emitOp(Opcode::ISetEq, tp, t_sid, tk);
            std::uint32_t br = emitOp(Opcode::Bra, -1, tp);
            prog_.code[br].target = kPatch;
            loop_breaks.push_back(br);
            tempNext_ -= 2;
        } else {
            // intersectionExit: idx >= deferredCount leaves the loop.
            int tcnt = temp();
            emitOp(Opcode::Ld, tcnt, tf, -1, -1, kDeferredCount, 4);
            int tp = temp();
            emitOp(Opcode::ISetGe, tp, tidx, tcnt);
            std::uint32_t br = emitOp(Opcode::Bra, -1, tp);
            prog_.code[br].target = kPatch;
            loop_breaks.push_back(br);
            tempNext_ -= 2;

            // currentDeferred = idx; compute the entry address.
            emitOp(Opcode::St, -1, tf, tidx, -1, kCurrentDeferred, 4);
            int tstride = movImm(kDeferredStride);
            int tent = temp();
            emitOp(Opcode::Mul, tent, tidx, tstride);
            emitOp(Opcode::Add, tent, tf, tent);

            // Load the entry's kind and sbt offset; map to a shader id
            // through the serialized SBT hit-group table.
            int tany = temp();
            emitOp(Opcode::Ld, tany, tent, -1, -1,
                   kDeferredBase + kDefAnyHit, 4);
            int tsbt = temp();
            emitOp(Opcode::Ld, tsbt, tent, -1, -1,
                   kDeferredBase + kDefSbtOffset, 4);
            int tsb = temp();
            emitOp(Opcode::DescBase, tsb, -1, -1, -1,
                   vptx::kSbtHitGroupBinding);
            int tsixteen = movImm(sizeof(vptx::HitGroupRecord));
            int taddr = temp();
            emitOp(Opcode::Mul, taddr, tsbt, tsixteen);
            emitOp(Opcode::Add, taddr, tsb, taddr);
            int tsid_i = temp();
            emitOp(Opcode::Ld, tsid_i, taddr, -1, -1,
                   offsetof(vptx::HitGroupRecord, intersection), 4);
            int tsid_a = temp();
            emitOp(Opcode::Ld, tsid_a, taddr, -1, -1,
                   offsetof(vptx::HitGroupRecord, anyHit), 4);
            // Missing any-hit shader (0xFFFFFFFF) maps to the default
            // accept marker 0xFFFFFFFE.
            int tff = movImm(0xFFFFFFFFull);
            int teq = temp();
            emitOp(Opcode::ISetEq, teq, tsid_a, tff);
            int tfe = movImm(0xFFFFFFFEull);
            emitOp(Opcode::Select, tsid_a, teq, tfe, tsid_a);
            emitOp(Opcode::Select, t_sid, tany, tsid_a, tsid_i);
        }

        // If-else-if dispatch over every any-hit / intersection shader.
        for (int shader_index : deferredChain_)
            emitGuardedCall(t_sid,
                            static_cast<std::uint64_t>(
                                shaderIdOf(shader_index)),
                            shader_index);
        // Default any-hit accept.
        std::uint64_t default_marker =
            opts_.fcc ? 0xFFFFFFFFFFFFFFFEull : 0xFFFFFFFEull;
        emitGuardedCall(t_sid, default_marker, -1, true);

        emitOp(Opcode::Add, tidx, tidx, tone);
        tempNext_ = loop_temp_floor;
        std::uint32_t jmp = emitOp(Opcode::Jmp);
        prog_.code[jmp].target = loop_start;
        std::uint32_t loop_exit = pc();
        loopRegions_.emplace_back(loop_start, loop_exit);
        for (std::uint32_t b : loop_breaks) {
            prog_.code[b].target = loop_exit;
            prog_.code[b].reconv = loop_exit;
        }

        // HitGeometry(): dispatch closest-hit (unless the ray carried
        // SkipClosestHit), else the miss shader.
        int tkind = temp();
        emitOp(Opcode::Ld, tkind, tf, -1, -1, kHitKind, 4);
        int tflags = temp();
        emitOp(Opcode::Ld, tflags, tf, -1, -1, kRayFlags, 4);
        int tskipbit = movImm(8); // kRayFlagSkipClosestHit
        int tskip = temp();
        emitOp(Opcode::And, tskip, tflags, tskipbit);
        int tzero = movImm(0);
        int tnz = temp();
        emitOp(Opcode::ISetNe, tnz, tkind, tzero);
        int tnoskip = temp();
        emitOp(Opcode::ISetEq, tnoskip, tskip, tzero);
        int tch = temp();
        emitOp(Opcode::And, tch, tnz, tnoskip);
        std::uint32_t to_miss = emitOp(Opcode::BraZ, -1, tch);

        {
            int tsbt = temp();
            emitOp(Opcode::Ld, tsbt, tf, -1, -1, kHitSbtOffset, 4);
            int tsb = temp();
            emitOp(Opcode::DescBase, tsb, -1, -1, -1,
                   vptx::kSbtHitGroupBinding);
            int tsixteen = movImm(sizeof(vptx::HitGroupRecord));
            int taddr = temp();
            emitOp(Opcode::Mul, taddr, tsbt, tsixteen);
            emitOp(Opcode::Add, taddr, tsb, taddr);
            int tch = temp();
            emitOp(Opcode::Ld, tch, taddr, -1, -1,
                   offsetof(vptx::HitGroupRecord, closestHit), 4);
            for (int shader_index : closestHitChain_)
                emitGuardedCall(tch,
                                static_cast<std::uint64_t>(
                                    shaderIdOf(shader_index)),
                                shader_index);
        }
        std::uint32_t to_end = emitOp(Opcode::Jmp);

        // Not the closest-hit path: run the miss shader only on a miss
        // (a SkipClosestHit ray that hit runs neither shader).
        prog_.code[to_miss].target = pc();
        std::uint32_t skip_miss = emitOp(Opcode::Bra, -1, tnz);
        emitCall(pipe_.missShaders[0]);

        prog_.code[to_end].target = pc();
        prog_.code[to_miss].reconv = pc();
        prog_.code[skip_miss].target = pc();
        prog_.code[skip_miss].reconv = pc();
        emitOp(Opcode::EndTraceRay);
        resetTemps();
    }

    /**
     * The VK_KHR_ray_query expansion (compute shaders). Same frame push
     * and traverseAS as a traceRayEXT, but resolution is inline with no
     * SBT indirection: every deferred triangle candidate is accepted via
     * the default commit; procedural entries are skipped (a ray-query
     * pipeline carries no intersection shaders to resolve them). The
     * frame stays live — the shader reads the committed hit words via
     * frameAddr() and pops with rayQueryEnd().
     */
    void
    lowerRayQuery(const nir::Instr &in)
    {
        auto s = [&](int i) { return in.srcs[static_cast<std::size_t>(i)]; };
        resetTemps();

        emitOp(Opcode::RtPushFrame);
        int tf = temp();
        emitOp(Opcode::RtFrameAddr, tf);
        const Addr ray_offsets[9] = {kRayOriginX, kRayOriginY, kRayOriginZ,
                                     kRayTmin,    kRayDirX,    kRayDirY,
                                     kRayDirZ,    kRayTmax,    kRayFlags};
        for (int i = 0; i < 9; ++i)
            emitOp(Opcode::St, -1, tf, s(i), -1, ray_offsets[i], 4);

        emitOp(Opcode::TraverseAS);

        // Inline resolution loop over the deferred table.
        int tidx = temp();
        emitOp(Opcode::MovImm, tidx, -1, -1, -1, 0);
        int tone = movImm(1);
        int tstride = movImm(kDeferredStride);
        int loop_temp_floor = tempNext_;

        std::uint32_t loop_start = pc();
        std::vector<std::uint32_t> loop_breaks;

        int tcnt = temp();
        emitOp(Opcode::Ld, tcnt, tf, -1, -1, kDeferredCount, 4);
        int tp = temp();
        emitOp(Opcode::ISetGe, tp, tidx, tcnt);
        std::uint32_t br = emitOp(Opcode::Bra, -1, tp);
        prog_.code[br].target = kPatch;
        loop_breaks.push_back(br);
        tempNext_ -= 2;

        emitOp(Opcode::St, -1, tf, tidx, -1, kCurrentDeferred, 4);
        int tent = temp();
        emitOp(Opcode::Mul, tent, tidx, tstride);
        emitOp(Opcode::Add, tent, tf, tent);
        int tany = temp();
        emitOp(Opcode::Ld, tany, tent, -1, -1, kDeferredBase + kDefAnyHit,
               4);
        // Procedural entries (anyHit flag clear) have no valid t: skip.
        std::uint32_t skip = emitOp(Opcode::BraZ, -1, tany);
        emitOp(Opcode::CommitAnyHit);
        prog_.code[skip].target = pc();
        prog_.code[skip].reconv = pc();

        emitOp(Opcode::Add, tidx, tidx, tone);
        tempNext_ = loop_temp_floor;
        std::uint32_t jmp = emitOp(Opcode::Jmp);
        prog_.code[jmp].target = loop_start;
        std::uint32_t loop_exit = pc();
        loopRegions_.emplace_back(loop_start, loop_exit);
        for (std::uint32_t b : loop_breaks) {
            prog_.code[b].target = loop_exit;
            prog_.code[b].reconv = loop_exit;
        }
        resetTemps();
    }

    const PipelineDesc &pipe_;
    const TranslateOptions &opts_;
    Program prog_;
    std::vector<std::pair<std::uint32_t, int>> callFixups_;
    std::vector<int> deferredChain_;
    std::vector<int> closestHitChain_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> loopRegions_;
    int tempBase_ = 0;
    int tempNext_ = 0;
    std::uint16_t curRegs_ = 0;
};

} // namespace

vptx::Program
translate(const PipelineDesc &pipeline, const TranslateOptions &options)
{
    Translator t(pipeline, options);
    return t.run();
}

namespace {

void
digestInstr(check::Digest &d, const nir::Instr &instr)
{
    d.mix(static_cast<std::uint64_t>(instr.op));
    d.mix(static_cast<std::uint64_t>(instr.dst));
    d.mix(instr.srcs.size());
    for (nir::Val v : instr.srcs)
        d.mix(static_cast<std::uint64_t>(v));
    d.mix(instr.imm);
    d.mix(instr.size);
}

void
digestBlock(check::Digest &d, const std::vector<nir::Node> &block)
{
    d.mix(block.size());
    for (const nir::Node &node : block) {
        d.mix(static_cast<std::uint64_t>(node.kind));
        d.mix(static_cast<std::uint64_t>(node.cond));
        digestInstr(d, node.instr);
        digestBlock(d, node.thenBlock);
        digestBlock(d, node.elseBlock);
        digestBlock(d, node.body);
    }
}

} // namespace

std::uint64_t
digestPipeline(const PipelineDesc &pipeline, bool fcc)
{
    check::Digest d;
    // Translation now produces the pre-decoded micro-op stream too, so
    // its encoding version is part of the pipeline's identity: bumping
    // it invalidates every cached / disk-stored compiled pipeline
    // instead of letting a stale stream satisfy a new binary's key.
    d.mix(static_cast<std::uint64_t>(vptx::kUopEncodingVersion));
    d.mix(fcc ? 1 : 0);
    d.mix(pipeline.shaders.size());
    for (const nir::Shader *shader : pipeline.shaders) {
        d.mix(shader->name.size());
        for (char c : shader->name)
            d.mix(static_cast<std::uint8_t>(c));
        d.mix(static_cast<std::uint64_t>(shader->stage));
        d.mix(static_cast<std::uint64_t>(shader->numValues));
        digestBlock(d, shader->body);
    }
    d.mix(static_cast<std::uint64_t>(pipeline.raygen));
    d.mix(static_cast<std::uint64_t>(pipeline.compute));
    d.mix(pipeline.immediateAnyHit ? 1 : 0);
    d.mix(pipeline.missShaders.size());
    for (int m : pipeline.missShaders)
        d.mix(static_cast<std::uint64_t>(m));
    d.mix(pipeline.hitGroups.size());
    for (const HitGroupDesc &g : pipeline.hitGroups) {
        d.mix(static_cast<std::uint64_t>(g.closestHit));
        d.mix(static_cast<std::uint64_t>(g.anyHit));
        d.mix(static_cast<std::uint64_t>(g.intersection));
    }
    return d.value();
}

} // namespace vksim::xlate
