/**
 * @file
 * Deterministic generators for the five evaluation scenes of the paper
 * (Table IV): TRI, REF, EXT (synthetic atrium standing in for Sponza),
 * RTV5 (path-traced statue + sphere field) and RTV6 (procedural spheres
 * and cubes with two intersection shaders).
 *
 * Geometry assets from the paper (Khronos samples, Sponza, OBJ statues)
 * are not redistributable, so each generator produces a procedural scene
 * matched in primitive count, BVH shape and ray mix; see DESIGN.md.
 */

#ifndef VKSIM_SCENE_SCENEGEN_H
#define VKSIM_SCENE_SCENEGEN_H

#include "scene/scene.h"

namespace vksim {

/** TRI: a single ray-traced triangle; primary rays only. */
Scene makeTriScene();

/** REF: mirror reflections and shadows over ~50 triangles. */
Scene makeRefScene();

/**
 * EXT: synthetic atrium (Sponza stand-in) — columns, walls, drapes;
 * `scale` in (0, 1] shrinks tessellation for fast tests
 * (scale = 1 yields roughly the paper's 283 k triangles).
 */
Scene makeExtScene(float scale = 1.0f);

/**
 * RTV5: statue mesh + procedural sphere field, depth of field and
 * refraction; `detail` is the icosphere subdivision order of the statue
 * (7 approximates the paper's 449 k primitives).
 */
Scene makeRtv5Scene(unsigned detail = 7);

/**
 * RTV6: procedural spheres *and* cubes (two distinct intersection
 * shaders) over a triangulated ground; 4080 primitives at default size.
 */
Scene makeRtv6Scene(unsigned procedural_count = 3568);

/**
 * HYB: hybrid-renderer proxy — diffuse court with boxes and a metal
 * panel; one shadow ray and one reflection ray per primary hit.
 */
Scene makeHybScene();

/** RQC: opaque triangle field for inline ray queries from compute. */
Scene makeRqcScene();

/**
 * AHA: alpha-test stress — a stack of *non-opaque* foliage-like grids
 * in front of an opaque floor, so nearly every primary ray suspends
 * into the any-hit shader several times.
 */
Scene makeAhaScene();

/**
 * ACC: enclosed box with an emissive ceiling panel, Lambertian and
 * metal blockers; path-traced over several accumulating frames.
 */
Scene makeAccScene();

} // namespace vksim

#endif // VKSIM_SCENE_SCENEGEN_H
