/**
 * @file
 * Host-side scene description: geometries (BLAS contents), instances (TLAS
 * contents), materials, camera, and lights.
 *
 * This mirrors what a Vulkan application provides through
 * VK_KHR_acceleration_structure: one bottom-level AS per unique geometry
 * and a single top-level AS positioning instances with transforms.
 */

#ifndef VKSIM_SCENE_SCENE_H
#define VKSIM_SCENE_SCENE_H

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/mat4.h"
#include "scene/camera.h"
#include "scene/material.h"
#include "scene/mesh.h"

namespace vksim {

/** What a bottom-level AS contains. */
enum class GeometryKind
{
    Triangles,
    Procedural
};

/** Procedural primitive shapes understood by the workload shaders. */
enum class ProceduralShape : std::int32_t
{
    Sphere = 0,
    Box = 1
};

/**
 * One custom-geometry primitive: an AABB for the BVH plus the analytic
 * parameters the intersection shader evaluates.
 */
struct ProceduralPrimitive
{
    Aabb bounds;
    ProceduralShape shape = ProceduralShape::Sphere;
    Vec3 center;
    float radius = 1.f;
    std::int32_t materialIndex = 0;

    static ProceduralPrimitive
    sphere(const Vec3 &center, float radius, std::int32_t material)
    {
        ProceduralPrimitive p;
        p.shape = ProceduralShape::Sphere;
        p.center = center;
        p.radius = radius;
        p.materialIndex = material;
        p.bounds.extend(center - Vec3(radius));
        p.bounds.extend(center + Vec3(radius));
        return p;
    }

    static ProceduralPrimitive
    box(const Aabb &bounds, std::int32_t material)
    {
        ProceduralPrimitive p;
        p.shape = ProceduralShape::Box;
        p.bounds = bounds;
        p.center = bounds.center();
        p.radius = 0.f;
        p.materialIndex = material;
        return p;
    }
};

/** One unique geometry; becomes one bottom-level AS. */
struct Geometry
{
    GeometryKind kind = GeometryKind::Triangles;
    TriangleMesh mesh;                        ///< for Triangles
    std::vector<ProceduralPrimitive> prims;   ///< for Procedural
    /** Opaque triangles skip the any-hit stage (Vulkan geometry flag). */
    bool opaque = true;

    std::size_t
    primitiveCount() const
    {
        return kind == GeometryKind::Triangles ? mesh.triangleCount()
                                               : prims.size();
    }

    /** Object-space bounds of primitive `i`. */
    Aabb
    primitiveBounds(std::size_t i) const
    {
        if (kind == GeometryKind::Procedural)
            return prims[i].bounds;
        Aabb box;
        Vec3 v0, v1, v2;
        mesh.triangle(i, &v0, &v1, &v2);
        box.extend(v0);
        box.extend(v1);
        box.extend(v2);
        return box;
    }
};

/** One TLAS instance referencing a geometry with a transform. */
struct Instance
{
    std::uint32_t geometryIndex = 0;
    Mat4 objectToWorld = Mat4::identity();
    /** User index; workloads use it as the instance's material index. */
    std::int32_t instanceCustomIndex = 0;
    /** Hit-group (closest-hit / intersection shader) selector. */
    std::int32_t sbtOffset = 0;
};

/** Complete scene: geometry + instances + shading environment. */
struct Scene
{
    std::vector<Geometry> geometries;
    std::vector<Instance> instances;
    std::vector<Material> materials;
    Camera camera;

    // Environment: vertical sky gradient and one directional sun light.
    Vec3 skyHorizon{0.8f, 0.85f, 0.95f};
    Vec3 skyZenith{0.35f, 0.5f, 0.85f};
    Vec3 sunDirection{0.4f, 0.8f, 0.2f}; ///< direction *towards* the sun
    Vec3 sunColor{1.0f, 0.97f, 0.9f};

    std::size_t
    totalPrimitives() const
    {
        std::size_t n = 0;
        for (const Instance &inst : instances)
            n += geometries[inst.geometryIndex].primitiveCount();
        return n;
    }
};

} // namespace vksim

#endif // VKSIM_SCENE_SCENE_H
