/**
 * @file
 * Surface material description shared by the simulated shaders and the CPU
 * reference tracer.
 *
 * The layout is fixed and trivially copyable because materials are
 * serialized verbatim into a descriptor buffer in simulated global memory
 * and loaded field-by-field by closest-hit shaders.
 */

#ifndef VKSIM_SCENE_MATERIAL_H
#define VKSIM_SCENE_MATERIAL_H

#include <cstdint>

#include "geom/vec.h"

namespace vksim {

/** Shading model selector; values are stable ABI for shader loads. */
enum class MaterialKind : std::int32_t
{
    Lambertian = 0, ///< diffuse
    Mirror = 1,     ///< perfect specular reflection
    Metal = 2,      ///< glossy reflection with fuzz
    Dielectric = 3, ///< refractive glass
    Emissive = 4    ///< light source
};

/** POD material record (48 bytes) as stored in the material buffer. */
struct Material
{
    Vec3 albedo{0.8f, 0.8f, 0.8f};
    std::int32_t kind = 0; // MaterialKind
    Vec3 emission{0.f, 0.f, 0.f};
    float fuzz = 0.f; ///< metal roughness
    float ior = 1.5f; ///< dielectric index of refraction
    float pad0 = 0.f;
    float pad1 = 0.f;
    float pad2 = 0.f;

    static Material
    lambertian(const Vec3 &albedo)
    {
        Material m;
        m.albedo = albedo;
        m.kind = static_cast<std::int32_t>(MaterialKind::Lambertian);
        return m;
    }

    static Material
    mirror(const Vec3 &tint)
    {
        Material m;
        m.albedo = tint;
        m.kind = static_cast<std::int32_t>(MaterialKind::Mirror);
        return m;
    }

    static Material
    metal(const Vec3 &tint, float fuzz)
    {
        Material m;
        m.albedo = tint;
        m.kind = static_cast<std::int32_t>(MaterialKind::Metal);
        m.fuzz = fuzz;
        return m;
    }

    static Material
    dielectric(float ior)
    {
        Material m;
        m.albedo = Vec3(1.f);
        m.kind = static_cast<std::int32_t>(MaterialKind::Dielectric);
        m.ior = ior;
        return m;
    }

    static Material
    emissive(const Vec3 &radiance)
    {
        Material m;
        m.albedo = Vec3(0.f);
        m.emission = radiance;
        m.kind = static_cast<std::int32_t>(MaterialKind::Emissive);
        return m;
    }
};

static_assert(sizeof(Material) == 48, "material ABI is fixed at 48 bytes");

} // namespace vksim

#endif // VKSIM_SCENE_MATERIAL_H
