#include "scene/scenegen.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace vksim {

Scene
makeTriScene()
{
    Scene scene;

    Geometry tri;
    tri.kind = GeometryKind::Triangles;
    tri.mesh.addVertex({-1.f, -0.8f, 0.f});
    tri.mesh.addVertex({1.f, -0.8f, 0.f});
    tri.mesh.addVertex({0.f, 1.0f, 0.f});
    tri.mesh.addTriangle(0, 1, 2);
    scene.geometries.push_back(std::move(tri));

    Instance inst;
    inst.geometryIndex = 0;
    inst.instanceCustomIndex = 0;
    scene.instances.push_back(inst);

    scene.materials.push_back(Material::lambertian({0.9f, 0.2f, 0.2f}));
    scene.camera =
        Camera::lookAt({0.f, 0.f, 2.5f}, {0.f, 0.f, 0.f}, {0.f, 1.f, 0.f},
                       60.f, 1.f);
    return scene;
}

Scene
makeRefScene()
{
    Scene scene;

    // Mirror floor: one quad (2 triangles).
    Geometry floor;
    floor.kind = GeometryKind::Triangles;
    floor.mesh = makeGridMesh(20.f, 20.f, 1, 1, 0.f);
    scene.geometries.push_back(std::move(floor));

    // A box geometry (12 triangles), instanced four times = 48 triangles;
    // with the floor this gives the paper's ~50 primitives.
    Geometry box;
    box.kind = GeometryKind::Triangles;
    box.mesh = makeBoxMesh({-0.5f, 0.f, -0.5f}, {0.5f, 1.f, 0.5f}, 1);
    scene.geometries.push_back(std::move(box));

    Instance floor_inst;
    floor_inst.geometryIndex = 0;
    floor_inst.instanceCustomIndex = 0; // mirror material
    scene.instances.push_back(floor_inst);

    const Vec3 spots[4] = {{-2.2f, 0.f, -1.f},
                           {-0.7f, 0.f, 0.6f},
                           {0.9f, 0.f, -0.4f},
                           {2.3f, 0.f, 0.9f}};
    for (int i = 0; i < 4; ++i) {
        Instance inst;
        inst.geometryIndex = 1;
        inst.objectToWorld = Mat4::translation(spots[i])
                             * Mat4::rotationY(0.6f * static_cast<float>(i))
                             * Mat4::scaling(Vec3(1.f + 0.2f * i));
        inst.instanceCustomIndex = 1 + i;
        scene.instances.push_back(inst);
    }

    scene.materials.push_back(Material::mirror({0.9f, 0.9f, 0.95f}));
    scene.materials.push_back(Material::lambertian({0.85f, 0.25f, 0.2f}));
    scene.materials.push_back(Material::lambertian({0.2f, 0.7f, 0.3f}));
    scene.materials.push_back(Material::metal({0.8f, 0.75f, 0.4f}, 0.05f));
    scene.materials.push_back(Material::lambertian({0.25f, 0.35f, 0.85f}));

    scene.sunDirection = normalize({0.45f, 0.8f, 0.3f});
    scene.camera =
        Camera::lookAt({0.f, 2.2f, 6.f}, {0.f, 0.6f, 0.f}, {0.f, 1.f, 0.f},
                       55.f, 1.f);
    return scene;
}

Scene
makeExtScene(float scale)
{
    scale = std::clamp(scale, 0.05f, 1.0f);
    auto scaled = [&](unsigned n, unsigned lo) {
        return std::max(lo, static_cast<unsigned>(n * scale));
    };

    Scene scene;

    // Materials: 0 floor, 1 walls, 2 columns, 3.. drapes.
    scene.materials.push_back(Material::lambertian({0.55f, 0.5f, 0.45f}));
    scene.materials.push_back(Material::lambertian({0.6f, 0.55f, 0.5f}));
    scene.materials.push_back(Material::lambertian({0.7f, 0.68f, 0.6f}));

    // Floor.
    Geometry floor;
    floor.kind = GeometryKind::Triangles;
    floor.mesh =
        makeGridMesh(36.f, 18.f, scaled(128, 4), scaled(64, 4), 0.f);
    scene.geometries.push_back(std::move(floor));
    Instance floor_inst;
    floor_inst.geometryIndex = 0;
    floor_inst.instanceCustomIndex = 0;
    scene.instances.push_back(floor_inst);

    // Two long side walls.
    Geometry wall;
    wall.kind = GeometryKind::Triangles;
    {
        TriangleMesh m =
            makeGridMesh(36.f, 10.f, scaled(128, 4), scaled(24, 2), 0.f);
        // Rotate the grid from XZ plane into XY (vertical wall).
        TriangleMesh vertical;
        vertical.append(m, Mat4::rotationX(3.14159265f / 2.f));
        wall.mesh = std::move(vertical);
    }
    scene.geometries.push_back(std::move(wall));
    for (int side = 0; side < 2; ++side) {
        Instance inst;
        inst.geometryIndex = 1;
        inst.objectToWorld =
            Mat4::translation({0.f, 5.f, side == 0 ? -9.f : 9.f});
        inst.instanceCustomIndex = 1;
        scene.instances.push_back(inst);
    }

    // Columns: one BLAS, 28 instances in two rows.
    Geometry column;
    column.kind = GeometryKind::Triangles;
    column.mesh =
        makeCylinderMesh(0.45f, 7.f, scaled(24, 6), scaled(30, 3));
    scene.geometries.push_back(std::move(column));
    for (int row = 0; row < 2; ++row)
        for (int i = 0; i < 14; ++i) {
            Instance inst;
            inst.geometryIndex = 2;
            float x = -16.f + 32.f * static_cast<float>(i) / 13.f;
            float z = row == 0 ? -6.f : 6.f;
            inst.objectToWorld = Mat4::translation({x, 0.f, z});
            inst.instanceCustomIndex = 2;
            scene.instances.push_back(inst);
        }

    // Hanging drapes: 13 unique cloth meshes.
    Pcg32 rng(0xE07u);
    for (int i = 0; i < 13; ++i) {
        Geometry drape;
        drape.kind = GeometryKind::Triangles;
        drape.mesh = makeClothMesh(3.2f, 5.5f, scaled(90, 4), scaled(90, 4),
                                   0.45f, 0x51000u + i);
        scene.geometries.push_back(std::move(drape));

        Instance inst;
        inst.geometryIndex =
            static_cast<std::uint32_t>(scene.geometries.size() - 1);
        float x = -15.f + 30.f * static_cast<float>(i) / 12.f;
        float z = (i % 2 == 0) ? -5.2f : 5.2f;
        inst.objectToWorld = Mat4::translation({x, 3.2f, z})
                             * Mat4::rotationY(rng.nextRange(-0.3f, 0.3f));
        inst.instanceCustomIndex =
            static_cast<std::int32_t>(scene.materials.size());
        scene.instances.push_back(inst);
        scene.materials.push_back(Material::lambertian(
            {rng.nextRange(0.3f, 0.9f), rng.nextRange(0.2f, 0.6f),
             rng.nextRange(0.2f, 0.5f)}));
    }

    scene.sunDirection = normalize({0.25f, 0.9f, 0.15f});
    scene.camera = Camera::lookAt({-12.f, 3.5f, 1.5f}, {8.f, 3.f, -1.f},
                                  {0.f, 1.f, 0.f}, 62.f, 1.f);
    return scene;
}

Scene
makeRtv5Scene(unsigned detail)
{
    Scene scene;
    Pcg32 rng(0x5715u);

    // Materials 0..3 reserved for the fixed geometry.
    scene.materials.push_back(Material::lambertian({0.5f, 0.5f, 0.55f}));
    scene.materials.push_back(Material::metal({0.9f, 0.85f, 0.75f}, 0.02f));
    scene.materials.push_back(Material::lambertian({0.4f, 0.35f, 0.3f}));
    scene.materials.push_back(Material::dielectric(1.5f));

    // Ground.
    Geometry ground;
    ground.kind = GeometryKind::Triangles;
    unsigned gseg = detail >= 6 ? 64 : 8;
    ground.mesh = makeGridMesh(40.f, 40.f, gseg, gseg, 0.f);
    scene.geometries.push_back(std::move(ground));
    Instance ground_inst;
    ground_inst.geometryIndex = 0;
    ground_inst.instanceCustomIndex = 0;
    scene.instances.push_back(ground_inst);

    // Statue: two displaced icospheres (main body + crown detail).
    Geometry statue;
    statue.kind = GeometryKind::Triangles;
    statue.mesh = makeStatueMesh(1.4f, detail, 0.35f, 0xABCD);
    if (detail >= 2) {
        TriangleMesh crown =
            makeStatueMesh(0.7f, detail >= 1 ? detail - 1 : 0, 0.5f, 0x1234);
        statue.mesh.append(crown, Mat4::translation({0.f, 2.4f, 0.f}));
    }
    scene.geometries.push_back(std::move(statue));
    Instance statue_inst;
    statue_inst.geometryIndex = 1;
    statue_inst.objectToWorld = Mat4::translation({0.f, 2.3f, 0.f});
    statue_inst.instanceCustomIndex = 1;
    scene.instances.push_back(statue_inst);

    // Pedestal.
    Geometry pedestal;
    pedestal.kind = GeometryKind::Triangles;
    pedestal.mesh =
        makeBoxMesh({-1.6f, 0.f, -1.6f}, {1.6f, 0.6f, 1.6f},
                    detail >= 6 ? 16 : 2);
    scene.geometries.push_back(std::move(pedestal));
    Instance pedestal_inst;
    pedestal_inst.geometryIndex = 2;
    pedestal_inst.instanceCustomIndex = 2;
    scene.instances.push_back(pedestal_inst);

    // Procedural sphere field around the statue (random materials).
    Geometry spheres;
    spheres.kind = GeometryKind::Procedural;
    for (int i = 0; i < 480; ++i) {
        float angle = rng.nextRange(0.f, 6.2831853f);
        float dist = rng.nextRange(3.0f, 17.f);
        float radius = rng.nextRange(0.18f, 0.55f);
        Vec3 center{dist * std::cos(angle), radius,
                    dist * std::sin(angle)};
        auto mat = static_cast<std::int32_t>(scene.materials.size());
        float pick = rng.nextFloat();
        if (pick < 0.6f)
            scene.materials.push_back(Material::lambertian(
                {rng.nextFloat(), rng.nextFloat(), rng.nextFloat()}));
        else if (pick < 0.85f)
            scene.materials.push_back(Material::metal(
                {0.5f + 0.5f * rng.nextFloat(), 0.5f + 0.5f * rng.nextFloat(),
                 0.5f + 0.5f * rng.nextFloat()},
                0.2f * rng.nextFloat()));
        else
            scene.materials.push_back(Material::dielectric(1.5f));
        spheres.prims.push_back(
            ProceduralPrimitive::sphere(center, radius, mat));
    }
    scene.geometries.push_back(std::move(spheres));
    Instance spheres_inst;
    spheres_inst.geometryIndex = 3;
    spheres_inst.sbtOffset = 1; // hit group with the sphere intersection
    scene.instances.push_back(spheres_inst);

    scene.sunDirection = normalize({0.5f, 0.75f, -0.3f});
    scene.camera = Camera::lookAt({7.5f, 3.3f, 9.5f}, {0.f, 2.4f, 0.f},
                                  {0.f, 1.f, 0.f}, 40.f, 1.f);
    scene.camera.aperture = 0.08f; // depth of field, as in RTV5
    return scene;
}

Scene
makeHybScene()
{
    Scene scene;

    // Materials: 0 floor, 1 metal back panel, 2..5 boxes.
    scene.materials.push_back(Material::lambertian({0.62f, 0.6f, 0.55f}));
    scene.materials.push_back(Material::metal({0.85f, 0.88f, 0.9f}, 0.f));
    scene.materials.push_back(Material::lambertian({0.8f, 0.3f, 0.25f}));
    scene.materials.push_back(Material::lambertian({0.25f, 0.65f, 0.3f}));
    scene.materials.push_back(Material::lambertian({0.3f, 0.4f, 0.85f}));
    scene.materials.push_back(Material::lambertian({0.85f, 0.75f, 0.3f}));

    // Tessellated floor so reflection rays hit real geometry.
    Geometry floor;
    floor.kind = GeometryKind::Triangles;
    floor.mesh = makeGridMesh(24.f, 24.f, 12, 12, 0.f);
    scene.geometries.push_back(std::move(floor));
    Instance floor_inst;
    floor_inst.geometryIndex = 0;
    floor_inst.instanceCustomIndex = 0;
    scene.instances.push_back(floor_inst);

    // Metal back panel: a vertical grid behind the boxes.
    Geometry panel;
    panel.kind = GeometryKind::Triangles;
    {
        TriangleMesh m = makeGridMesh(14.f, 6.f, 6, 3, 0.f);
        TriangleMesh vertical;
        vertical.append(m, Mat4::rotationX(3.14159265f / 2.f));
        panel.mesh = std::move(vertical);
    }
    scene.geometries.push_back(std::move(panel));
    Instance panel_inst;
    panel_inst.geometryIndex = 1;
    panel_inst.objectToWorld = Mat4::translation({0.f, 3.f, -5.5f});
    panel_inst.instanceCustomIndex = 1;
    scene.instances.push_back(panel_inst);

    // One box BLAS instanced four times across the court.
    Geometry box;
    box.kind = GeometryKind::Triangles;
    box.mesh = makeBoxMesh({-0.6f, 0.f, -0.6f}, {0.6f, 1.3f, 0.6f}, 2);
    scene.geometries.push_back(std::move(box));
    const Vec3 spots[4] = {{-3.1f, 0.f, -1.4f},
                           {-1.0f, 0.f, 1.2f},
                           {1.2f, 0.f, -0.6f},
                           {3.0f, 0.f, 1.5f}};
    for (int i = 0; i < 4; ++i) {
        Instance inst;
        inst.geometryIndex = 2;
        inst.objectToWorld = Mat4::translation(spots[i])
                             * Mat4::rotationY(0.45f * static_cast<float>(i))
                             * Mat4::scaling(Vec3(0.9f + 0.25f * i));
        inst.instanceCustomIndex = 2 + i;
        scene.instances.push_back(inst);
    }

    scene.sunDirection = normalize({0.4f, 0.8f, 0.35f});
    scene.camera =
        Camera::lookAt({0.f, 3.0f, 8.f}, {0.f, 1.0f, 0.f}, {0.f, 1.f, 0.f},
                       52.f, 1.f);
    return scene;
}

Scene
makeRqcScene()
{
    Scene scene;
    Pcg32 rng(0x0C0Cu);

    scene.materials.push_back(Material::lambertian({0.5f, 0.5f, 0.5f}));

    // Ground grid plus a ring of tilted quads: everything opaque
    // triangles, traversed inline by the compute shader's ray query.
    Geometry ground;
    ground.kind = GeometryKind::Triangles;
    ground.mesh = makeGridMesh(30.f, 30.f, 10, 10, 0.f);
    scene.geometries.push_back(std::move(ground));
    Instance ground_inst;
    ground_inst.geometryIndex = 0;
    ground_inst.instanceCustomIndex = 0;
    scene.instances.push_back(ground_inst);

    Geometry quad;
    quad.kind = GeometryKind::Triangles;
    quad.mesh = makeGridMesh(1.8f, 1.8f, 2, 2, 0.f);
    scene.geometries.push_back(std::move(quad));
    for (int i = 0; i < 12; ++i) {
        Instance inst;
        inst.geometryIndex = 1;
        float angle = 6.2831853f * static_cast<float>(i) / 12.f;
        float dist = 3.5f + 0.8f * static_cast<float>(i % 3);
        inst.objectToWorld =
            Mat4::translation({dist * std::cos(angle),
                               1.1f + 0.4f * static_cast<float>(i % 4),
                               dist * std::sin(angle)})
            * Mat4::rotationY(angle)
            * Mat4::rotationX(rng.nextRange(0.5f, 1.2f));
        inst.instanceCustomIndex = 0;
        scene.instances.push_back(inst);
    }

    scene.camera =
        Camera::lookAt({0.f, 4.5f, 9.f}, {0.f, 1.0f, 0.f}, {0.f, 1.f, 0.f},
                       50.f, 1.f);
    return scene;
}

Scene
makeAhaScene()
{
    Scene scene;

    // Material 0: opaque floor; 1..4: the translucent foliage layers.
    scene.materials.push_back(Material::lambertian({0.45f, 0.4f, 0.35f}));

    Geometry floor;
    floor.kind = GeometryKind::Triangles;
    floor.mesh = makeGridMesh(16.f, 16.f, 4, 4, 0.f);
    scene.geometries.push_back(std::move(floor));
    Instance floor_inst;
    floor_inst.geometryIndex = 0;
    floor_inst.instanceCustomIndex = 0;
    scene.instances.push_back(floor_inst);

    // Four stacked *non-opaque* grids facing the camera: every primary
    // ray crosses several alpha-tested layers, so traversal suspends
    // into the any-hit shader repeatedly before committing.
    Geometry leaf;
    leaf.kind = GeometryKind::Triangles;
    leaf.opaque = false;
    {
        TriangleMesh m = makeGridMesh(7.f, 5.f, 8, 6, 0.f);
        TriangleMesh vertical;
        vertical.append(m, Mat4::rotationX(3.14159265f / 2.f));
        leaf.mesh = std::move(vertical);
    }
    scene.geometries.push_back(std::move(leaf));
    for (int i = 0; i < 4; ++i) {
        Instance inst;
        inst.geometryIndex = 1;
        inst.objectToWorld =
            Mat4::translation({0.3f * static_cast<float>(i % 2 ? 1 : -1),
                               2.2f + 0.15f * static_cast<float>(i),
                               -1.5f * static_cast<float>(i)})
            * Mat4::rotationY(0.12f * static_cast<float>(i));
        inst.instanceCustomIndex = 1 + i;
        scene.instances.push_back(inst);
        scene.materials.push_back(Material::lambertian(
            {0.2f + 0.15f * static_cast<float>(i), 0.6f,
             0.25f + 0.1f * static_cast<float>(i)}));
    }

    scene.sunDirection = normalize({0.3f, 0.9f, 0.2f});
    scene.camera =
        Camera::lookAt({0.f, 2.4f, 7.f}, {0.f, 2.2f, 0.f}, {0.f, 1.f, 0.f},
                       48.f, 1.f);
    return scene;
}

Scene
makeAccScene()
{
    Scene scene;

    // Materials: 0 white walls, 1 red wall, 2 green wall, 3 emissive
    // ceiling panel, 4 metal box, 5 diffuse box.
    scene.materials.push_back(Material::lambertian({0.73f, 0.73f, 0.73f}));
    scene.materials.push_back(Material::lambertian({0.65f, 0.05f, 0.05f}));
    scene.materials.push_back(Material::lambertian({0.12f, 0.45f, 0.15f}));
    scene.materials.push_back(Material::emissive({12.f, 11.f, 10.f}));
    scene.materials.push_back(Material::metal({0.8f, 0.82f, 0.85f}, 0.08f));
    scene.materials.push_back(Material::lambertian({0.6f, 0.55f, 0.45f}));

    // Floor and ceiling.
    Geometry slab;
    slab.kind = GeometryKind::Triangles;
    slab.mesh = makeGridMesh(6.f, 6.f, 2, 2, 0.f);
    scene.geometries.push_back(std::move(slab));
    Instance floor_inst;
    floor_inst.geometryIndex = 0;
    floor_inst.instanceCustomIndex = 0;
    scene.instances.push_back(floor_inst);
    Instance ceil_inst;
    ceil_inst.geometryIndex = 0;
    ceil_inst.objectToWorld = Mat4::translation({0.f, 6.f, 0.f})
                              * Mat4::rotationX(3.14159265f);
    ceil_inst.instanceCustomIndex = 0;
    scene.instances.push_back(ceil_inst);

    // Back, left, and right walls from the same slab BLAS.
    Instance back_inst;
    back_inst.geometryIndex = 0;
    back_inst.objectToWorld = Mat4::translation({0.f, 3.f, -3.f})
                              * Mat4::rotationX(3.14159265f / 2.f);
    back_inst.instanceCustomIndex = 0;
    scene.instances.push_back(back_inst);
    Instance left_inst;
    left_inst.geometryIndex = 0;
    left_inst.objectToWorld = Mat4::translation({-3.f, 3.f, 0.f})
                              * Mat4::rotationY(3.14159265f / 2.f)
                              * Mat4::rotationX(3.14159265f / 2.f);
    left_inst.instanceCustomIndex = 1;
    scene.instances.push_back(left_inst);
    Instance right_inst;
    right_inst.geometryIndex = 0;
    right_inst.objectToWorld = Mat4::translation({3.f, 3.f, 0.f})
                               * Mat4::rotationY(-3.14159265f / 2.f)
                               * Mat4::rotationX(3.14159265f / 2.f);
    right_inst.instanceCustomIndex = 2;
    scene.instances.push_back(right_inst);

    // Emissive panel just under the ceiling.
    Geometry panel;
    panel.kind = GeometryKind::Triangles;
    panel.mesh = makeGridMesh(2.f, 2.f, 1, 1, 0.f);
    scene.geometries.push_back(std::move(panel));
    Instance lamp_inst;
    lamp_inst.geometryIndex = 1;
    lamp_inst.objectToWorld = Mat4::translation({0.f, 5.95f, 0.f})
                              * Mat4::rotationX(3.14159265f);
    lamp_inst.instanceCustomIndex = 3;
    scene.instances.push_back(lamp_inst);

    // Two boxes: tall metal, short diffuse.
    Geometry box;
    box.kind = GeometryKind::Triangles;
    box.mesh = makeBoxMesh({-0.6f, 0.f, -0.6f}, {0.6f, 1.f, 0.6f}, 2);
    scene.geometries.push_back(std::move(box));
    Instance tall_inst;
    tall_inst.geometryIndex = 2;
    tall_inst.objectToWorld = Mat4::translation({-1.1f, 0.f, -1.0f})
                              * Mat4::rotationY(0.35f)
                              * Mat4::scaling({1.f, 2.4f, 1.f});
    tall_inst.instanceCustomIndex = 4;
    scene.instances.push_back(tall_inst);
    Instance short_inst;
    short_inst.geometryIndex = 2;
    short_inst.objectToWorld = Mat4::translation({1.2f, 0.f, 0.8f})
                               * Mat4::rotationY(-0.3f)
                               * Mat4::scaling({1.1f, 1.1f, 1.1f});
    short_inst.instanceCustomIndex = 5;
    scene.instances.push_back(short_inst);

    // Enclosed box: no sun, the panel is the only light.
    scene.sunColor = {0.f, 0.f, 0.f};
    scene.skyHorizon = {0.02f, 0.02f, 0.025f};
    scene.skyZenith = {0.01f, 0.01f, 0.015f};
    scene.camera =
        Camera::lookAt({0.f, 3.f, 8.5f}, {0.f, 2.6f, 0.f}, {0.f, 1.f, 0.f},
                       45.f, 1.f);
    return scene;
}

Scene
makeRtv6Scene(unsigned procedural_count)
{
    Scene scene;
    Pcg32 rng(0x5716u);

    scene.materials.push_back(Material::lambertian({0.5f, 0.52f, 0.5f}));

    // Triangulated ground: 16 x 16 grid = 512 triangles.
    Geometry ground;
    ground.kind = GeometryKind::Triangles;
    ground.mesh = makeGridMesh(60.f, 60.f, 16, 16, 0.f);
    scene.geometries.push_back(std::move(ground));
    Instance ground_inst;
    ground_inst.geometryIndex = 0;
    ground_inst.instanceCustomIndex = 0;
    scene.instances.push_back(ground_inst);

    // Two procedural geometries: spheres and cubes, each with its own
    // intersection shader (distinct hit groups via sbtOffset).
    Geometry spheres;
    spheres.kind = GeometryKind::Procedural;
    Geometry cubes;
    cubes.kind = GeometryKind::Procedural;

    for (unsigned i = 0; i < procedural_count; ++i) {
        float x = rng.nextRange(-27.f, 27.f);
        float z = rng.nextRange(-27.f, 27.f);
        float r = rng.nextRange(0.18f, 0.45f);
        auto mat = static_cast<std::int32_t>(scene.materials.size());
        float pick = rng.nextFloat();
        if (pick < 0.7f)
            scene.materials.push_back(Material::lambertian(
                {rng.nextFloat(), rng.nextFloat(), rng.nextFloat()}));
        else if (pick < 0.9f)
            scene.materials.push_back(Material::metal(
                {0.6f + 0.4f * rng.nextFloat(), 0.6f + 0.4f * rng.nextFloat(),
                 0.6f + 0.4f * rng.nextFloat()},
                0.15f * rng.nextFloat()));
        else
            scene.materials.push_back(Material::dielectric(1.5f));

        // ~61 % spheres / 39 % cubes keeps both intersection shaders busy.
        if (rng.nextFloat() < 0.61f) {
            spheres.prims.push_back(
                ProceduralPrimitive::sphere({x, r, z}, r, mat));
        } else {
            Aabb box;
            box.extend({x - r, 0.f, z - r});
            box.extend({x + r, 2.f * r, z + r});
            cubes.prims.push_back(ProceduralPrimitive::box(box, mat));
        }
    }
    scene.geometries.push_back(std::move(spheres));
    scene.geometries.push_back(std::move(cubes));

    Instance spheres_inst;
    spheres_inst.geometryIndex = 1;
    spheres_inst.sbtOffset = 1; // sphere intersection hit group
    scene.instances.push_back(spheres_inst);

    Instance cubes_inst;
    cubes_inst.geometryIndex = 2;
    cubes_inst.sbtOffset = 2; // box intersection hit group
    scene.instances.push_back(cubes_inst);

    scene.sunDirection = normalize({0.3f, 0.85f, 0.25f});
    scene.camera = Camera::lookAt({14.f, 6.f, 14.f}, {0.f, 0.8f, 0.f},
                                  {0.f, 1.f, 0.f}, 45.f, 1.f);
    return scene;
}

} // namespace vksim
