/**
 * @file
 * Pinhole / thin-lens camera.
 *
 * The same camera maths runs inside the simulated ray-generation shaders
 * (field-by-field from a descriptor buffer) and inside the CPU reference
 * tracer, so primary rays agree bit-for-bit between the two renderers.
 */

#ifndef VKSIM_SCENE_CAMERA_H
#define VKSIM_SCENE_CAMERA_H

#include <cmath>

#include "geom/ray.h"
#include "geom/vec.h"

namespace vksim {

/** POD camera record; serialized into the camera descriptor buffer. */
struct Camera
{
    Vec3 position{0.f, 0.f, 0.f};
    float tanHalfFov = 1.f;
    Vec3 forward{0.f, 0.f, -1.f};
    float aspect = 1.f;
    Vec3 right{1.f, 0.f, 0.f};
    float aperture = 0.f; ///< lens radius; 0 disables depth of field
    Vec3 up{0.f, 1.f, 0.f};
    float focusDistance = 1.f;

    /** Build a camera looking from `eye` to `target`. */
    static Camera
    lookAt(const Vec3 &eye, const Vec3 &target, const Vec3 &world_up,
           float vfov_degrees, float aspect_ratio)
    {
        Camera cam;
        cam.position = eye;
        cam.forward = normalize(target - eye);
        cam.right = normalize(cross(cam.forward, world_up));
        cam.up = cross(cam.right, cam.forward);
        cam.tanHalfFov =
            std::tan(vfov_degrees * 3.14159265358979323846f / 360.f);
        cam.aspect = aspect_ratio;
        cam.focusDistance = length(target - eye);
        return cam;
    }

    /**
     * Primary ray through pixel (px, py) of a width x height image with
     * sub-pixel jitter (jx, jy) in [0,1) and lens samples (lx, ly) in
     * [0,1) used only when aperture > 0.
     */
    Ray
    generateRay(unsigned px, unsigned py, unsigned width, unsigned height,
                float jx = 0.5f, float jy = 0.5f, float lx = 0.5f,
                float ly = 0.5f) const
    {
        float ndc_x = (2.f * (px + jx) / width - 1.f) * tanHalfFov * aspect;
        float ndc_y = (1.f - 2.f * (py + jy) / height) * tanHalfFov;
        Vec3 dir = normalize(forward + right * ndc_x + up * ndc_y);

        Ray ray;
        ray.origin = position;
        ray.direction = dir;
        if (aperture > 0.f) {
            // Concentric-free simple disc sample from two uniforms.
            float r = aperture * std::sqrt(lx);
            float phi = 2.f * 3.14159265358979323846f * ly;
            Vec3 lens_off =
                right * (r * std::cos(phi)) + up * (r * std::sin(phi));
            Vec3 focus = position + dir * (focusDistance / dot(dir, forward));
            ray.origin = position + lens_off;
            ray.direction = normalize(focus - ray.origin);
        }
        ray.tmin = 1e-4f;
        ray.tmax = 1e30f;
        return ray;
    }
};

} // namespace vksim

#endif // VKSIM_SCENE_CAMERA_H
