#include "scene/mesh.h"

#include <array>
#include <cmath>
#include <map>

#include "util/rng.h"

namespace vksim {

namespace {

constexpr float kPi = 3.14159265358979323846f;

} // namespace

void
TriangleMesh::append(const TriangleMesh &other, const Mat4 &xf)
{
    auto base = static_cast<std::uint32_t>(vertices_.size());
    vertices_.reserve(vertices_.size() + other.vertices_.size());
    for (const Vec3 &v : other.vertices_)
        vertices_.push_back(xf.transformPoint(v));
    indices_.reserve(indices_.size() + other.indices_.size());
    for (std::uint32_t i : other.indices_)
        indices_.push_back(base + i);
}

Aabb
TriangleMesh::bounds() const
{
    Aabb box;
    for (const Vec3 &v : vertices_)
        box.extend(v);
    return box;
}

TriangleMesh
makeGridMesh(float size_x, float size_z, unsigned seg_x, unsigned seg_z,
             float y)
{
    TriangleMesh mesh;
    for (unsigned j = 0; j <= seg_z; ++j)
        for (unsigned i = 0; i <= seg_x; ++i) {
            float fx = (static_cast<float>(i) / seg_x - 0.5f) * size_x;
            float fz = (static_cast<float>(j) / seg_z - 0.5f) * size_z;
            mesh.addVertex({fx, y, fz});
        }
    auto idx = [&](unsigned i, unsigned j) { return j * (seg_x + 1) + i; };
    for (unsigned j = 0; j < seg_z; ++j)
        for (unsigned i = 0; i < seg_x; ++i) {
            mesh.addTriangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1));
            mesh.addTriangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1));
        }
    return mesh;
}

TriangleMesh
makeBoxMesh(const Vec3 &lo, const Vec3 &hi, unsigned subdivisions)
{
    TriangleMesh mesh;
    unsigned n = std::max(1u, subdivisions);
    // Each face is an n x n grid. Faces: +-X, +-Y, +-Z.
    auto add_face = [&](const Vec3 &origin, const Vec3 &du, const Vec3 &dv) {
        auto base = static_cast<std::uint32_t>(mesh.vertices().size());
        for (unsigned j = 0; j <= n; ++j)
            for (unsigned i = 0; i <= n; ++i) {
                float fu = static_cast<float>(i) / n;
                float fv = static_cast<float>(j) / n;
                mesh.addVertex(origin + du * fu + dv * fv);
            }
        auto idx = [&](unsigned i, unsigned j) {
            return base + j * (n + 1) + i;
        };
        for (unsigned j = 0; j < n; ++j)
            for (unsigned i = 0; i < n; ++i) {
                mesh.addTriangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1));
                mesh.addTriangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1));
            }
    };
    Vec3 d = hi - lo;
    Vec3 dx{d.x, 0, 0}, dy{0, d.y, 0}, dz{0, 0, d.z};
    add_face(lo, dz, dy);                       // -X
    add_face({hi.x, lo.y, lo.z}, dy, dz);       // +X
    add_face(lo, dx, dz);                       // -Y
    add_face({lo.x, hi.y, lo.z}, dz, dx);       // +Y
    add_face(lo, dy, dx);                       // -Z
    add_face({lo.x, lo.y, hi.z}, dx, dy);       // +Z
    return mesh;
}

TriangleMesh
makeCylinderMesh(float radius, float height, unsigned radial_segs,
                 unsigned height_segs)
{
    TriangleMesh mesh;
    unsigned r = std::max(3u, radial_segs);
    unsigned h = std::max(1u, height_segs);
    for (unsigned j = 0; j <= h; ++j) {
        float y = height * static_cast<float>(j) / h;
        for (unsigned i = 0; i < r; ++i) {
            float a = 2.f * kPi * static_cast<float>(i) / r;
            mesh.addVertex({radius * std::cos(a), y, radius * std::sin(a)});
        }
    }
    auto idx = [&](unsigned i, unsigned j) { return j * r + (i % r); };
    for (unsigned j = 0; j < h; ++j)
        for (unsigned i = 0; i < r; ++i) {
            mesh.addTriangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1));
            mesh.addTriangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1));
        }
    // Caps (fans around center vertices).
    std::uint32_t c0 = mesh.addVertex({0, 0, 0});
    std::uint32_t c1 = mesh.addVertex({0, height, 0});
    for (unsigned i = 0; i < r; ++i) {
        mesh.addTriangle(c0, idx(i + 1, 0), idx(i, 0));
        mesh.addTriangle(c1, idx(i, h), idx(i + 1, h));
    }
    return mesh;
}

TriangleMesh
makeIcosphereMesh(float radius, unsigned subdivisions)
{
    // Base icosahedron.
    const float t = (1.f + std::sqrt(5.f)) / 2.f;
    std::vector<Vec3> verts = {
        {-1, t, 0}, {1, t, 0},   {-1, -t, 0}, {1, -t, 0},
        {0, -1, t}, {0, 1, t},   {0, -1, -t}, {0, 1, -t},
        {t, 0, -1}, {t, 0, 1},   {-t, 0, -1}, {-t, 0, 1},
    };
    std::vector<std::array<std::uint32_t, 3>> faces = {
        {0, 11, 5}, {0, 5, 1},   {0, 1, 7},   {0, 7, 10}, {0, 10, 11},
        {1, 5, 9},  {5, 11, 4},  {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
        {3, 9, 4},  {3, 4, 2},   {3, 2, 6},   {3, 6, 8},  {3, 8, 9},
        {4, 9, 5},  {2, 4, 11},  {6, 2, 10},  {8, 6, 7},  {9, 8, 1},
    };
    for (auto &v : verts)
        v = normalize(v);

    for (unsigned s = 0; s < subdivisions; ++s) {
        std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
            midpoints;
        auto midpoint = [&](std::uint32_t a, std::uint32_t b) {
            auto key = std::minmax(a, b);
            auto it = midpoints.find(key);
            if (it != midpoints.end())
                return it->second;
            Vec3 mid = normalize((verts[a] + verts[b]) * 0.5f);
            verts.push_back(mid);
            auto id = static_cast<std::uint32_t>(verts.size() - 1);
            midpoints.emplace(key, id);
            return id;
        };
        std::vector<std::array<std::uint32_t, 3>> next;
        next.reserve(faces.size() * 4);
        for (auto &f : faces) {
            std::uint32_t ab = midpoint(f[0], f[1]);
            std::uint32_t bc = midpoint(f[1], f[2]);
            std::uint32_t ca = midpoint(f[2], f[0]);
            next.push_back({f[0], ab, ca});
            next.push_back({f[1], bc, ab});
            next.push_back({f[2], ca, bc});
            next.push_back({ab, bc, ca});
        }
        faces = std::move(next);
    }

    TriangleMesh mesh;
    for (const Vec3 &v : verts)
        mesh.addVertex(v * radius);
    for (auto &f : faces)
        mesh.addTriangle(f[0], f[1], f[2]);
    return mesh;
}

TriangleMesh
makeClothMesh(float size_x, float size_y, unsigned seg_x, unsigned seg_y,
              float amplitude, std::uint32_t seed)
{
    Pcg32 rng(seed);
    float ph0 = rng.nextRange(0.f, 2.f * kPi);
    float ph1 = rng.nextRange(0.f, 2.f * kPi);
    float fr0 = rng.nextRange(2.f, 5.f);
    float fr1 = rng.nextRange(5.f, 9.f);

    TriangleMesh mesh;
    for (unsigned j = 0; j <= seg_y; ++j)
        for (unsigned i = 0; i <= seg_x; ++i) {
            float u = static_cast<float>(i) / seg_x;
            float v = static_cast<float>(j) / seg_y;
            float z = amplitude
                      * (std::sin(fr0 * u * kPi + ph0) * 0.6f
                         + std::sin(fr1 * (u + v) * kPi + ph1) * 0.4f)
                      * v; // pinned at the top edge
            mesh.addVertex({(u - 0.5f) * size_x, (1.f - v) * size_y, z});
        }
    auto idx = [&](unsigned i, unsigned j) { return j * (seg_x + 1) + i; };
    for (unsigned j = 0; j < seg_y; ++j)
        for (unsigned i = 0; i < seg_x; ++i) {
            mesh.addTriangle(idx(i, j), idx(i + 1, j), idx(i + 1, j + 1));
            mesh.addTriangle(idx(i, j), idx(i + 1, j + 1), idx(i, j + 1));
        }
    return mesh;
}

namespace {

/** Deterministic value noise on the unit sphere via hashed lattice. */
float
sphericalNoise(const Vec3 &dir, float frequency, std::uint32_t seed)
{
    Vec3 p = dir * frequency;
    auto fold = [&](int xi, int yi, int zi) {
        std::uint32_t h = hashU32(static_cast<std::uint32_t>(xi) * 73856093u
                                  ^ static_cast<std::uint32_t>(yi) * 19349663u
                                  ^ static_cast<std::uint32_t>(zi) * 83492791u
                                  ^ seed);
        return static_cast<float>(h) / 4294967296.f;
    };
    int x0 = static_cast<int>(std::floor(p.x));
    int y0 = static_cast<int>(std::floor(p.y));
    int z0 = static_cast<int>(std::floor(p.z));
    float fx = p.x - x0, fy = p.y - y0, fz = p.z - z0;
    auto smooth = [](float t) { return t * t * (3.f - 2.f * t); };
    fx = smooth(fx);
    fy = smooth(fy);
    fz = smooth(fz);
    float acc = 0.f;
    for (int dz = 0; dz <= 1; ++dz)
        for (int dy = 0; dy <= 1; ++dy)
            for (int dx = 0; dx <= 1; ++dx) {
                float w = (dx ? fx : 1.f - fx) * (dy ? fy : 1.f - fy)
                          * (dz ? fz : 1.f - fz);
                acc += w * fold(x0 + dx, y0 + dy, z0 + dz);
            }
    return acc;
}

} // namespace

TriangleMesh
makeStatueMesh(float radius, unsigned subdivisions, float displacement,
               std::uint32_t seed)
{
    TriangleMesh sphere = makeIcosphereMesh(1.f, subdivisions);
    TriangleMesh mesh;
    for (const Vec3 &v : sphere.vertices()) {
        Vec3 dir = normalize(v);
        float n = 0.f;
        float amp = 1.f, freq = 2.f;
        for (int octave = 0; octave < 4; ++octave) {
            n += amp * (sphericalNoise(dir, freq, seed + octave) - 0.5f);
            amp *= 0.5f;
            freq *= 2.f;
        }
        // Stretch vertically to be vaguely statue-like.
        Vec3 p = dir * (radius * (1.f + displacement * n));
        p.y *= 1.6f;
        mesh.addVertex(p);
    }
    for (std::size_t i = 0; i < sphere.triangleCount(); ++i) {
        const auto &idx = sphere.indices();
        mesh.addTriangle(idx[3 * i], idx[3 * i + 1], idx[3 * i + 2]);
    }
    return mesh;
}

} // namespace vksim
