/**
 * @file
 * Triangle mesh container and procedural mesh generators.
 *
 * The paper's workloads load scene geometry (Sponza, OBJ statues, ...);
 * because those assets are not redistributable we generate deterministic
 * procedural geometry of equivalent scale and structure (see DESIGN.md,
 * substitutions table).
 */

#ifndef VKSIM_SCENE_MESH_H
#define VKSIM_SCENE_MESH_H

#include <cstdint>
#include <vector>

#include "geom/aabb.h"
#include "geom/mat4.h"
#include "geom/vec.h"

namespace vksim {

/** Indexed triangle mesh. */
class TriangleMesh
{
  public:
    /** Append a vertex and return its index. */
    std::uint32_t
    addVertex(const Vec3 &p)
    {
        vertices_.push_back(p);
        return static_cast<std::uint32_t>(vertices_.size() - 1);
    }

    /** Append a triangle over existing vertex indices. */
    void
    addTriangle(std::uint32_t a, std::uint32_t b, std::uint32_t c)
    {
        indices_.push_back(a);
        indices_.push_back(b);
        indices_.push_back(c);
    }

    /** Append all of `other`, transformed by `xf`. */
    void append(const TriangleMesh &other, const Mat4 &xf);

    std::size_t triangleCount() const { return indices_.size() / 3; }
    const std::vector<Vec3> &vertices() const { return vertices_; }
    const std::vector<std::uint32_t> &indices() const { return indices_; }

    /** Vertex positions of triangle `i`. */
    void
    triangle(std::size_t i, Vec3 *v0, Vec3 *v1, Vec3 *v2) const
    {
        *v0 = vertices_[indices_[3 * i + 0]];
        *v1 = vertices_[indices_[3 * i + 1]];
        *v2 = vertices_[indices_[3 * i + 2]];
    }

    /** Bounding box over all vertices. */
    Aabb bounds() const;

  private:
    std::vector<Vec3> vertices_;
    std::vector<std::uint32_t> indices_;
};

/**
 * Mesh generators. All take tessellation parameters so workload scenes can
 * hit target primitive counts (Table IV) deterministically.
 * @{
 */

/** Grid of quads (2 triangles each) in the XZ plane at height y. */
TriangleMesh makeGridMesh(float size_x, float size_z, unsigned seg_x,
                          unsigned seg_z, float y = 0.f);

/** Axis-aligned box mesh, optionally subdivided per face. */
TriangleMesh makeBoxMesh(const Vec3 &lo, const Vec3 &hi,
                         unsigned subdivisions = 1);

/** Closed cylinder along +Y with the given tessellation. */
TriangleMesh makeCylinderMesh(float radius, float height,
                              unsigned radial_segs, unsigned height_segs);

/** Icosphere (subdivided icosahedron) of the given subdivision order. */
TriangleMesh makeIcosphereMesh(float radius, unsigned subdivisions);

/**
 * Heightfield over a grid with layered sinusoidal displacement; used for
 * the drapes in the synthetic atrium (EXT) scene.
 */
TriangleMesh makeClothMesh(float size_x, float size_y, unsigned seg_x,
                           unsigned seg_y, float amplitude,
                           std::uint32_t seed);

/**
 * A "statue": icosphere displaced by deterministic multi-octave noise;
 * stand-in for the OBJ statue of the RTV5 workload.
 */
TriangleMesh makeStatueMesh(float radius, unsigned subdivisions,
                            float displacement, std::uint32_t seed);

/** @} */

} // namespace vksim

#endif // VKSIM_SCENE_MESH_H
