/**
 * @file
 * The RT unit performance model (paper Sec. III-C and Fig. 3, right).
 *
 * One RT unit per SM. Warps executing traverseAS enter the Warp Buffer
 * (up to maxWarps concurrently). Per cycle:
 *  - the Warp Scheduler (greedy-then-oldest) selects one warp and the
 *    Memory Scheduler collects node-fetch addresses from its ready rays,
 *    merging identical requests and splitting >32 B nodes into 32 B
 *    chunks pushed onto the Memory Access Queue;
 *  - the head of the queue issues to the L1 (or a dedicated RT cache);
 *  - returning data enters the Response FIFO; the Operation Scheduler
 *    pops one entry per cycle and forwards the ray to the pipelined
 *    ray-box / ray-triangle / transform units (fixed latencies);
 *  - completed operations update the ray status and traversal stack.
 *
 * Short-stack spills and intersection-buffer appends generate real write
 * traffic; with FCC enabled the coalescing-buffer searches add loads
 * (the +11 % memory overhead of Sec. VI-E).
 */

#ifndef VKSIM_RTUNIT_RTUNIT_H
#define VKSIM_RTUNIT_RTUNIT_H

#include <array>
#include <deque>
#include <functional>
#include <vector>

#include "accel/traversal.h"
#include "cache/cache.h"
#include "core/clockedunit.h"
#include "util/stats.h"
#include "util/timeline.h"
#include "vptx/context.h"

namespace vksim {

/** Memory port the owning SM provides (routes to L1 or RT cache). */
class RtMemPort
{
  public:
    virtual ~RtMemPort() = default;

    /** Issue a 32 B sector read; response arrives via RtUnit::onResponse.
     *  @return false when the port is stalled (retry next cycle). */
    virtual bool rtIssueRead(Addr sector, std::uint64_t tag) = 0;

    /** Fire-and-forget 32 B sector write (traffic accounting only). */
    virtual bool rtIssueWrite(Addr sector) = 0;
};

/** RT unit configuration (Table III + operation-unit latencies). */
struct RtUnitConfig
{
    unsigned maxWarps = 8;        ///< concurrent warps in the warp buffer
    unsigned memQueueSize = 16;   ///< Memory Access Queue entries
    unsigned issuePerCycle = 1;   ///< sectors sent to the cache per cycle
    unsigned opsPerCycle = 1;     ///< Response FIFO pops per cycle
    unsigned boxLatency = 10;     ///< 6-wide box test latency
    unsigned triLatency = 12;     ///< triangle test latency
    unsigned transformLatency = 8;///< world-to-object transform latency
    unsigned shortStackEntries = 8; ///< traversal short-stack size
    bool perfectBvh = false;      ///< node fetches have zero latency
    bool fccEnabled = false;      ///< coalescing-buffer insertion traffic
    /// Immediate any-hit: fixed warp re-entry cost per suspension, plus
    /// a per-dynamic-instruction charge for the shader itself.
    unsigned anyHitBaseLatency = 20;
    unsigned anyHitPerInstr = 2;
};

/** The per-SM ray tracing accelerator. */
class RtUnit : public ClockedUnit
{
  public:
    RtUnit(const RtUnitConfig &config, const vptx::LaunchContext *ctx,
           StatGroup *stats);

    void setMemPort(RtMemPort *port) { port_ = port; }

    /** Free slot in the warp buffer? */
    bool canAccept() const;

    /**
     * Park a warp split whose traverseAS just issued; the warp's
     * pendingTraverses entry holds the per-ray traversal state machines.
     */
    void submit(vptx::Warp *warp, int split_id, Cycle now);

    /** Memory response for a previously issued read. */
    void onResponse(std::uint64_t tag, Cycle now);

    /** Advance one core cycle. */
    void cycle(Cycle now) override;

    /** A finished traverse (functional completion is the SM's job). */
    struct Completion
    {
        vptx::Warp *warp;
        int splitId;
    };

    std::vector<Completion> drainCompletions();

    /** Any warps resident? */
    bool busy() const { return liveEntries_ > 0; }

    /**
     * Totally quiescent: no resident warps *and* every queue drained.
     * Stronger than !busy() — a fully quiescent unit's cycle() is a
     * provable no-op, which is what the sleep gate needs.
     */
    bool quiescent() const
    {
        return liveEntries_ == 0 && memQueue_.empty()
               && responseFifo_.empty() && writeQueue_.empty()
               && inflight_.empty() && completions_.empty();
    }

    /** ClockedUnit: a quiescent RT unit has nothing scheduled. */
    bool idle() const override { return quiescent(); }
    Cycle nextEventCycle() const override
    {
        return quiescent() ? kNoPendingEvent : 0;
    }

    /** Rays still traversing right now (Fig. 18 occupancy). */
    unsigned activeRays() const;

    /** Optional warp-latency histogram (paper Fig. 13). */
    void setLatencyHistogram(Histogram *hist) { latencyHist_ = hist; }

    /**
     * Optional timeline sink (the owning SM's shard): one "X" span per
     * traversal warp, submit to completion, on the "rtunit" track.
     */
    void setTimeline(TimelineShard *shard) { timeline_ = shard; }

    /**
     * Validate lane/queue bookkeeping at a cycle barrier: live-entry and
     * live-lane counts, lane-status/chunk consistency, the conservation
     * of outstanding chunks across the Memory Access Queue and in-flight
     * reads, queue bounds, and Response-FIFO referential integrity.
     */
    void checkInvariants(check::Reporter &rep, const std::string &path,
                         Cycle now) const;

    /** Order-insensitive digest of all warp-buffer and queue state. */
    std::uint64_t stateDigest() const;

    /**
     * Serialize / restore the full warp-buffer and queue state
     * (checkpointing). Warp identities cross the serialization boundary
     * as SM warp-slot indices: `slot_of` maps a resident warp pointer to
     * its slot at save time, `warp_of` resolves the slot back to the
     * freshly restored warp at load time. loadState re-links each
     * entry's TraverseState pointer and per-lane traversal sinks exactly
     * the way submit() wires them.
     */
    void saveState(
        serial::Writer &w,
        const std::function<std::uint32_t(const vptx::Warp *)> &slot_of)
        const;
    void loadState(
        serial::Reader &r,
        const std::function<vptx::Warp *(std::uint32_t)> &warp_of);

  private:
    enum class LaneStatus : std::uint8_t
    {
        Idle,       ///< not participating
        Ready,      ///< wants to issue its next node fetch
        WaitingMem, ///< chunks outstanding
        InFifo,     ///< data returned, waiting for the op scheduler
        InOp,       ///< inside a box/tri/transform unit
        InAnyHit,   ///< suspended mid-traversal on an any-hit invocation
        Done
    };

    struct LaneState
    {
        LaneStatus status = LaneStatus::Idle;
        unsigned chunksOutstanding = 0;
        Cycle opDoneAt = 0;
        NodeType nodeType = NodeType::Invalid;
        bool anyHitCommit = false; ///< verdict applied when InAnyHit ends
    };

    /** Sink forwarding traversal-generated traffic to the write queue. */
    struct LaneSink : TraversalMemSink
    {
        RtUnit *unit = nullptr;
        unsigned slot = 0;
        unsigned lane = 0;
        void stackSpill(unsigned bytes, bool is_write) override;
        void intersectionWrite(unsigned bytes) override;
    };

    struct WarpEntry
    {
        bool valid = false;
        vptx::Warp *warp = nullptr;
        vptx::TraverseState *state = nullptr;
        int splitId = 0;
        vptx::Mask mask = 0;
        std::array<LaneState, kWarpSize> lanes;
        std::array<LaneSink, kWarpSize> sinks;
        Cycle submitTime = 0;
        unsigned lanesLive = 0;
        /// Result/FCC writeback traffic left before completion signals.
        std::deque<Addr> writebackQueue;
        bool inWriteback = false;
        std::uint64_t spillWrites = 0;
        std::uint64_t deferredWrites = 0;
    };

    struct MemQueueEntry
    {
        Addr sector;
        /// (slot, lane) pairs waiting on this sector.
        std::vector<std::pair<unsigned, unsigned>> targets;
    };

    void memSchedule(Cycle now);
    void opSchedule(Cycle now);
    void finishOps(Cycle now);
    void startWriteback(WarpEntry &entry, unsigned slot, Cycle now);
    void pumpWriteback(Cycle now);
    void laneFetchDone(unsigned slot, unsigned lane, Cycle now);
    void queueWrite(Addr addr);
    unsigned latencyOf(NodeType type) const;

    RtUnitConfig config_;
    const vptx::LaunchContext *ctx_;
    StatGroup *stats_;
    RtMemPort *port_ = nullptr;

    std::vector<WarpEntry> entries_;
    unsigned liveEntries_ = 0;
    int lastScheduled_ = -1; ///< GTO: stick to this warp slot
    std::deque<MemQueueEntry> memQueue_;
    std::deque<std::pair<unsigned, unsigned>> responseFifo_;
    std::deque<Addr> writeQueue_; ///< spill / intersection-buffer stores
    std::vector<Completion> completions_;

    // tag -> memQueue bookkeeping for in-flight sectors.
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<unsigned, unsigned>>>
        inflight_;
    std::uint64_t nextTag_ = 1;
    Histogram *latencyHist_ = nullptr;
    TimelineShard *timeline_ = nullptr;

    /// Any-hit invocation conservation (checked at cycle barriers):
    /// suspended == committed + ignored + lanes currently InAnyHit.
    std::uint64_t anyhitSuspended_ = 0;
    std::uint64_t anyhitCommitted_ = 0;
    std::uint64_t anyhitIgnored_ = 0;
};

} // namespace vksim

#endif // VKSIM_RTUNIT_RTUNIT_H
