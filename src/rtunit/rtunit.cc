#include "rtunit/rtunit.h"

#include <algorithm>

#include "util/log.h"
#include "vptx/exec.h"
#include "vptx/rt_runtime.h"
#include "vptx/rtstack.h"

namespace vksim {

void
RtUnit::LaneSink::stackSpill(unsigned bytes, bool is_write)
{
    WarpEntry &entry = unit->entries_[slot];
    entry.spillWrites += 1;
    if (is_write) {
        // Spill into the tail of the per-thread frame area.
        Addr base = entry.state->frameBase(lane);
        unit->queueWrite(base + vptx::kRtFrameBytes - kSectorBytes);
    }
    unit->stats_->counter("stack_spills").inc();
}

void
RtUnit::LaneSink::intersectionWrite(unsigned bytes)
{
    WarpEntry &entry = unit->entries_[slot];
    Addr base = entry.state->frameBase(lane);
    Addr addr = vptx::deferredEntryAddr(
        base, static_cast<unsigned>(entry.deferredWrites % vptx::kMaxDeferred));
    ++entry.deferredWrites;
    unit->queueWrite(addr);
    unit->stats_->counter("deferred_writes").inc();
}

RtUnit::RtUnit(const RtUnitConfig &config, const vptx::LaunchContext *ctx,
               StatGroup *stats)
    : config_(config), ctx_(ctx), stats_(stats)
{
    // The largest node (128 B TopLeaf) must fit in the queue in one
    // piece, or the all-or-nothing memory scheduler could never place it.
    vksim_assert(config_.memQueueSize
                 >= 2 * kNodeBlockSize / kSectorBytes);
    entries_.resize(config_.maxWarps);
}

bool
RtUnit::canAccept() const
{
    return liveEntries_ < config_.maxWarps;
}

unsigned
RtUnit::activeRays() const
{
    unsigned n = 0;
    for (const WarpEntry &e : entries_) {
        if (!e.valid)
            continue;
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            if (e.lanes[lane].status != LaneStatus::Idle
                && e.lanes[lane].status != LaneStatus::Done)
                ++n;
    }
    return n;
}

void
RtUnit::submit(vptx::Warp *warp, int split_id, Cycle now)
{
    vksim_assert(canAccept());
    unsigned slot = 0;
    while (entries_[slot].valid)
        ++slot;
    WarpEntry &entry = entries_[slot];
    entry = WarpEntry{};
    entry.valid = true;
    entry.warp = warp;
    entry.splitId = split_id;
    entry.state = &warp->pendingTraverses.at(split_id);
    entry.mask = entry.state->mask;
    entry.submitTime = now;
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        entry.sinks[lane].unit = this;
        entry.sinks[lane].slot = slot;
        entry.sinks[lane].lane = lane;
        RayTraversal *trav = entry.state->ray(lane);
        if (!(entry.mask & (1u << lane)) || !trav)
            continue;
        trav->setSink(&entry.sinks[lane]);
        entry.lanes[lane].status = LaneStatus::Ready;
        ++entry.lanesLive;
    }
    ++liveEntries_;
    stats_->counter("warps_submitted").inc();
    stats_->accum("rays_per_warp").sample(entry.lanesLive);
    if (entry.lanesLive == 0)
        startWriteback(entry, slot, now);
}

void
RtUnit::queueWrite(Addr addr)
{
    writeQueue_.push_back(sectorAlign(addr));
}

unsigned
RtUnit::latencyOf(NodeType type) const
{
    switch (type) {
      case NodeType::Internal:
        return config_.boxLatency;
      case NodeType::TriangleLeaf:
        return config_.triLatency;
      case NodeType::TopLeaf:
        return config_.transformLatency;
      case NodeType::ProceduralLeaf:
        return 1; // recorded to the intersection buffer, no compute
      default:
        return 1;
    }
}

void
RtUnit::memSchedule(Cycle now)
{
    // Warp Scheduler: greedy-then-oldest over warp-buffer slots.
    auto has_ready = [&](int slot) {
        const WarpEntry &e = entries_[static_cast<std::size_t>(slot)];
        if (!e.valid)
            return false;
        for (unsigned lane = 0; lane < kWarpSize; ++lane)
            if (e.lanes[lane].status == LaneStatus::Ready)
                return true;
        return false;
    };

    int slot = -1;
    if (lastScheduled_ >= 0 && has_ready(lastScheduled_)) {
        slot = lastScheduled_;
    } else {
        // Oldest = lowest submit time among ready warps.
        Cycle best = ~Cycle(0);
        for (unsigned s = 0; s < entries_.size(); ++s) {
            if (has_ready(static_cast<int>(s))
                && entries_[s].submitTime < best) {
                best = entries_[s].submitTime;
                slot = static_cast<int>(s);
            }
        }
    }
    if (slot < 0)
        return;
    lastScheduled_ = slot;
    WarpEntry &entry = entries_[static_cast<std::size_t>(slot)];

    // Memory Scheduler: collect fetch addresses from all ready rays,
    // merge identical requests, push the unique set onto the queue.
    std::vector<std::pair<Addr, unsigned>> fetches; // sector, size
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        LaneState &ls = entry.lanes[lane];
        if (ls.status != LaneStatus::Ready)
            continue;
        RayTraversal *trav = entry.state->ray(lane);
        Addr addr;
        unsigned size;
        if (!trav->nextFetch(&addr, &size)) {
            ls.status = LaneStatus::Done;
            --entry.lanesLive;
            continue;
        }
        ls.nodeType = trav->pendingType();
        unsigned chunks = (size + kSectorBytes - 1) / kSectorBytes;

        // All-or-nothing: a node's chunks go into the queue together or
        // not at all. Queueing a prefix and marking the lane WaitingMem
        // (the old behaviour) dropped the remaining chunks forever — the
        // lane woke up after the partial fetch, under-counting memory
        // traffic whenever the queue backed up. Plan first: how many
        // chunks need new entries (the rest merge into queued sectors)?
        auto find_queued = [&](Addr sector) -> MemQueueEntry * {
            for (MemQueueEntry &q : memQueue_)
                if (q.sector == sector)
                    return &q;
            return nullptr;
        };
        unsigned new_entries = 0;
        for (unsigned c = 0; c < chunks; ++c)
            if (!find_queued(sectorAlign(addr) + c * kSectorBytes))
                ++new_entries;
        if (memQueue_.size() + new_entries > config_.memQueueSize) {
            stats_->counter("mem_queue_full_stalls").inc();
            break; // queue full: this lane and the rest stay Ready
        }

        // Commit: the whole node fits.
        ls.chunksOutstanding = 0;
        for (unsigned c = 0; c < chunks; ++c) {
            Addr sector = sectorAlign(addr) + c * kSectorBytes;
            if (MemQueueEntry *q = find_queued(sector)) {
                q->targets.emplace_back(slot, lane);
                stats_->counter("mem_merged").inc();
            } else {
                MemQueueEntry q2;
                q2.sector = sector;
                q2.targets.emplace_back(slot, lane);
                memQueue_.push_back(std::move(q2));
                stats_->counter("mem_requests").inc();
            }
            ++ls.chunksOutstanding;
        }
        ls.status = LaneStatus::WaitingMem;
    }

    // Check warps whose rays all finished during collection.
    for (unsigned s = 0; s < entries_.size(); ++s) {
        WarpEntry &e = entries_[s];
        if (e.valid && !e.inWriteback && e.lanesLive == 0)
            startWriteback(e, s, now);
    }
}

void
RtUnit::onResponse(std::uint64_t tag, Cycle now)
{
    auto it = inflight_.find(tag);
    if (it == inflight_.end())
        return;
    std::vector<std::pair<unsigned, unsigned>> targets =
        std::move(it->second);
    inflight_.erase(it);
    for (auto [slot, lane] : targets)
        laneFetchDone(slot, lane, now);
}

void
RtUnit::laneFetchDone(unsigned slot, unsigned lane, Cycle now)
{
    WarpEntry &entry = entries_[slot];
    if (!entry.valid)
        return;
    LaneState &ls = entry.lanes[lane];
    if (ls.status != LaneStatus::WaitingMem || ls.chunksOutstanding == 0)
        return;
    if (--ls.chunksOutstanding == 0) {
        ls.status = LaneStatus::InFifo;
        responseFifo_.emplace_back(slot, lane);
    }
}

void
RtUnit::opSchedule(Cycle now)
{
    for (unsigned pops = 0;
         pops < config_.opsPerCycle && !responseFifo_.empty(); ++pops) {
        auto [slot, lane] = responseFifo_.front();
        responseFifo_.pop_front();
        WarpEntry &entry = entries_[slot];
        LaneState &ls = entry.lanes[lane];
        if (!entry.valid || ls.status != LaneStatus::InFifo)
            continue;
        ls.status = LaneStatus::InOp;
        ls.opDoneAt = now + latencyOf(ls.nodeType);
        switch (ls.nodeType) {
          case NodeType::Internal:
            stats_->counter("ops_box").inc();
            break;
          case NodeType::TriangleLeaf:
            stats_->counter("ops_triangle").inc();
            break;
          case NodeType::TopLeaf:
            stats_->counter("ops_transform").inc();
            break;
          default:
            stats_->counter("ops_other").inc();
            break;
        }
    }
}

void
RtUnit::finishOps(Cycle now)
{
    for (unsigned slot = 0; slot < entries_.size(); ++slot) {
        WarpEntry &entry = entries_[slot];
        if (!entry.valid)
            continue;
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            LaneState &ls = entry.lanes[lane];
            if (ls.opDoneAt > now)
                continue;
            RayTraversal *trav = entry.state->ray(lane);
            if (ls.status == LaneStatus::InAnyHit) {
                // Suspension expired: apply the recorded verdict, account
                // the commit's hit-word store, and resume (or retire).
                trav->resolveAnyHit(ls.anyHitCommit);
                if (ls.anyHitCommit) {
                    queueWrite(entry.state->frameBase(lane)
                               + vptx::frame::kHitT);
                    ++anyhitCommitted_;
                    stats_->counter("anyhit_committed").inc();
                } else {
                    ++anyhitIgnored_;
                    stats_->counter("anyhit_ignored").inc();
                }
                if (trav->done()) {
                    ls.status = LaneStatus::Done;
                    --entry.lanesLive;
                } else {
                    ls.status = LaneStatus::Ready;
                }
                continue;
            }
            if (ls.status != LaneStatus::InOp)
                continue;
            trav->step();
            if (trav->anyHitSuspended()) {
                // Mid-traversal any-hit: run the shader functionally now
                // (one-lane mini-warp), hold the lane for the modeled
                // re-entry latency, resolve when it expires.
                vksim_assert(ctx_ != nullptr);
                vptx::AnyHitRun run = vptx::runAnyHitShader(
                    *ctx_, entry.state->frameBase(lane),
                    trav->pendingAnyHit(), trav->currentTmax());
                ls.anyHitCommit = run.commit;
                ls.status = LaneStatus::InAnyHit;
                ls.opDoneAt = now + config_.anyHitBaseLatency
                              + config_.anyHitPerInstr * run.instructions;
                ++anyhitSuspended_;
                stats_->counter("anyhit_suspended").inc();
                stats_->counter("anyhit_instructions").inc(run.instructions);
                continue;
            }
            if (trav->done()) {
                ls.status = LaneStatus::Done;
                --entry.lanesLive;
            } else {
                ls.status = LaneStatus::Ready;
            }
        }
        if (!entry.inWriteback && entry.lanesLive == 0)
            startWriteback(entry, slot, now);
    }
}

void
RtUnit::startWriteback(WarpEntry &entry, unsigned slot, Cycle now)
{
    entry.inWriteback = true;
    // Hit-result stores: one sector per participating ray (paper: "on a
    // primitive hit, the results are stored in memory and read back
    // during the closest hit shader execution").
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        if (!(entry.mask & (1u << lane)))
            continue;
        Addr base = entry.state->frameBase(lane);
        entry.writebackQueue.push_back(
            sectorAlign(base + vptx::frame::kHitT));
    }
    // FCC: coalescing-buffer construction traffic (searches + inserts).
    if (config_.fccEnabled && ctx_) {
        std::vector<vptx::CoalescedRow> rows;
        vptx::rt_runtime::FccBuildCost cost =
            vptx::rt_runtime::buildCoalescingTable(*entry.state, *ctx_,
                                                   &rows);
        Addr fcc_base = ctx_->fccBase
                        + (entry.warp->warpId) * vptx::kFccBytesPerWarp;
        for (std::uint64_t i = 0; i < cost.loads + cost.stores; ++i)
            entry.writebackQueue.push_back(
                fcc_base
                + (i % vptx::kMaxFccRows) * vptx::kFccRowBytes);
        stats_->counter("fcc_insert_loads").inc(cost.loads);
        stats_->counter("fcc_insert_stores").inc(cost.stores);
    }
}

void
RtUnit::pumpWriteback(Cycle now)
{
    for (unsigned slot = 0; slot < entries_.size(); ++slot) {
        WarpEntry &entry = entries_[slot];
        if (!entry.valid || !entry.inWriteback)
            continue;
        // Issue one writeback sector per cycle through the port.
        if (!entry.writebackQueue.empty() && port_) {
            if (port_->rtIssueWrite(entry.writebackQueue.front()))
                entry.writebackQueue.pop_front();
        } else if (!port_) {
            entry.writebackQueue.clear();
        }
        if (entry.writebackQueue.empty()) {
            // Done: hand back to the SM.
            completions_.push_back({entry.warp, entry.splitId});
            stats_->counter("warps_completed").inc();
            stats_->accum("warp_latency").sample(
                static_cast<double>(now - entry.submitTime));
            if (latencyHist_)
                latencyHist_->sample(
                    static_cast<double>(now - entry.submitTime));
            if (timeline_)
                timeline_->complete(
                    "rtunit.slot" + std::to_string(slot), "traverse",
                    entry.submitTime, now);
            entry.valid = false;
            --liveEntries_;
            if (lastScheduled_ == static_cast<int>(slot))
                lastScheduled_ = -1;
        }
    }
}

void
RtUnit::cycle(Cycle now)
{
    if (liveEntries_ > 0) {
        stats_->counter("busy_cycles").inc();
        stats_->counter("active_ray_cycles").inc(activeRays());
        stats_->counter("slot_ray_cycles").inc(liveEntries_ * kWarpSize);
        stats_->counter("occupied_warp_cycles").inc(liveEntries_);
    }

    finishOps(now);
    opSchedule(now);
    memSchedule(now);

    // Issue memory requests: reads from the Memory Access Queue head and
    // spill/deferred writes, respecting the port's per-cycle budget.
    unsigned issued = 0;
    while (issued < config_.issuePerCycle && !memQueue_.empty()) {
        MemQueueEntry &q = memQueue_.front();
        if (config_.perfectBvh) {
            for (auto [slot, lane] : q.targets)
                laneFetchDone(slot, lane, now);
            memQueue_.pop_front();
            ++issued;
            continue;
        }
        if (!port_)
            vksim_panic("RT unit has no memory port");
        std::uint64_t tag = nextTag_++;
        if (!port_->rtIssueRead(q.sector, tag))
            break;
        inflight_.emplace(tag, std::move(q.targets));
        memQueue_.pop_front();
        ++issued;
    }
    while (issued < config_.issuePerCycle && !writeQueue_.empty()
           && port_ && !config_.perfectBvh) {
        if (!port_->rtIssueWrite(writeQueue_.front()))
            break;
        writeQueue_.pop_front();
        ++issued;
    }
    if (config_.perfectBvh)
        writeQueue_.clear();

    pumpWriteback(now);
}

void
RtUnit::checkInvariants(check::Reporter &rep, const std::string &path,
                        Cycle now) const
{
    auto lane_path = [&](unsigned slot, unsigned lane) {
        return path + ".slot" + std::to_string(slot) + ".lane"
               + std::to_string(lane);
    };

    // Outstanding chunks per (slot, lane) across queue + in-flight reads.
    std::array<std::array<unsigned, kWarpSize>, 64> pending{};
    vksim_assert(entries_.size() <= pending.size());
    for (const MemQueueEntry &q : memQueue_)
        for (auto [slot, lane] : q.targets)
            ++pending[slot][lane];
    for (const auto &[tag, targets] : inflight_)
        for (auto [slot, lane] : targets)
            ++pending[slot][lane];

    unsigned live = 0;
    std::uint64_t in_any_hit = 0;
    for (unsigned slot = 0; slot < entries_.size(); ++slot) {
        const WarpEntry &e = entries_[slot];
        if (!e.valid) {
            for (unsigned lane = 0; lane < kWarpSize; ++lane)
                if (pending[slot][lane] != 0)
                    rep.report(lane_path(slot, lane),
                               "memory traffic targets an empty warp slot");
            continue;
        }
        ++live;
        unsigned lanes_live = 0;
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const LaneState &ls = e.lanes[lane];
            bool in_mask = (e.mask >> lane) & 1u;
            if (ls.status != LaneStatus::Idle && !in_mask)
                rep.report(lane_path(slot, lane),
                           "active lane outside the split's mask");
            bool counts_live = ls.status == LaneStatus::Ready
                               || ls.status == LaneStatus::WaitingMem
                               || ls.status == LaneStatus::InFifo
                               || ls.status == LaneStatus::InOp
                               || ls.status == LaneStatus::InAnyHit;
            if (counts_live)
                ++lanes_live;
            bool waiting = ls.status == LaneStatus::WaitingMem;
            if (waiting != (ls.chunksOutstanding > 0))
                rep.report(lane_path(slot, lane),
                           "chunksOutstanding="
                               + std::to_string(ls.chunksOutstanding)
                               + " disagrees with WaitingMem status");
            unsigned want = waiting ? ls.chunksOutstanding : 0;
            if (pending[slot][lane] != want)
                rep.report(lane_path(slot, lane),
                           std::to_string(pending[slot][lane])
                               + " queued/in-flight chunks target this "
                                 "lane, which expects "
                               + std::to_string(want));
            if ((ls.status == LaneStatus::InOp
                 || ls.status == LaneStatus::InAnyHit)
                && ls.opDoneAt <= now)
                rep.report(lane_path(slot, lane),
                           "operation finished at cycle "
                               + std::to_string(ls.opDoneAt)
                               + " but the lane is still in it");
            const RayTraversal *trav = e.state->ray(lane);
            bool suspended = in_mask && trav && trav->anyHitSuspended();
            if (suspended != (ls.status == LaneStatus::InAnyHit))
                rep.report(lane_path(slot, lane),
                           "traversal suspension disagrees with the "
                           "lane's InAnyHit status");
            if (ls.status == LaneStatus::InAnyHit)
                ++in_any_hit;
        }
        if (lanes_live != e.lanesLive)
            rep.report(path + ".slot" + std::to_string(slot),
                       "lanesLive=" + std::to_string(e.lanesLive)
                           + " but " + std::to_string(lanes_live)
                           + " lanes are in a live status");
    }
    if (live != liveEntries_)
        rep.report(path, "liveEntries=" + std::to_string(liveEntries_)
                             + " but " + std::to_string(live)
                             + " slots are valid");
    // Any-hit invocation conservation: every suspension is either still
    // held in a lane or has been resolved exactly once.
    if (anyhitSuspended_ != anyhitCommitted_ + anyhitIgnored_ + in_any_hit)
        rep.report(path + ".anyhit",
                   "suspended=" + std::to_string(anyhitSuspended_)
                       + " != committed="
                       + std::to_string(anyhitCommitted_) + " + ignored="
                       + std::to_string(anyhitIgnored_) + " + in-flight="
                       + std::to_string(in_any_hit));
    if (memQueue_.size() > config_.memQueueSize)
        rep.report(path + ".mem_queue",
                   std::to_string(memQueue_.size())
                       + " entries, limit "
                       + std::to_string(config_.memQueueSize));

    // Each Response-FIFO entry must name a valid InFifo lane, exactly
    // once (the lane stays InFifo until the op scheduler pops it).
    std::array<std::array<unsigned, kWarpSize>, 64> fifo{};
    for (auto [slot, lane] : responseFifo_) {
        if (slot >= entries_.size() || !entries_[slot].valid
            || entries_[slot].lanes[lane].status != LaneStatus::InFifo) {
            rep.report(path + ".response_fifo",
                       "entry (" + std::to_string(slot) + ","
                           + std::to_string(lane)
                           + ") does not name a valid InFifo lane");
            continue;
        }
        ++fifo[slot][lane];
    }
    for (unsigned slot = 0; slot < entries_.size(); ++slot) {
        if (!entries_[slot].valid)
            continue;
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            bool in_fifo =
                entries_[slot].lanes[lane].status == LaneStatus::InFifo;
            if (fifo[slot][lane] != (in_fifo ? 1u : 0u))
                rep.report(lane_path(slot, lane),
                           "InFifo lane appears "
                               + std::to_string(fifo[slot][lane])
                               + " times in the Response FIFO");
        }
    }
}

std::uint64_t
RtUnit::stateDigest() const
{
    check::Digest d;
    for (const WarpEntry &e : entries_) {
        d.mix(e.valid);
        if (!e.valid)
            continue;
        d.mix(static_cast<std::uint64_t>(e.splitId));
        d.mix(e.mask);
        d.mix(e.submitTime);
        d.mix(e.lanesLive);
        d.mix(e.inWriteback);
        d.mix(e.spillWrites);
        d.mix(e.deferredWrites);
        for (Addr a : e.writebackQueue)
            d.mix(a);
        d.mix(e.writebackQueue.size());
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const LaneState &ls = e.lanes[lane];
            d.mix(static_cast<std::uint64_t>(ls.status));
            d.mix(ls.chunksOutstanding);
            d.mix(ls.opDoneAt);
            d.mix(static_cast<std::uint64_t>(ls.nodeType));
            d.mix(ls.anyHitCommit);
            const RayTraversal *trav = e.state->ray(lane);
            if (((e.mask >> lane) & 1u) && trav) {
                d.mix(trav->nodesVisited());
                d.mixFloat(trav->currentTmax());
            }
        }
    }
    for (const MemQueueEntry &q : memQueue_) {
        d.mix(q.sector);
        for (auto [slot, lane] : q.targets) {
            d.mix(slot);
            d.mix(lane);
        }
        d.mix(q.targets.size());
    }
    for (auto [slot, lane] : responseFifo_) {
        d.mix(slot);
        d.mix(lane);
    }
    for (Addr a : writeQueue_)
        d.mix(a);
    // inflight_ is a hash map: fold order-insensitively.
    std::uint64_t fold = 0;
    for (const auto &[tag, targets] : inflight_) {
        check::Digest e;
        e.mix(tag);
        for (auto [slot, lane] : targets) {
            e.mix(slot);
            e.mix(lane);
        }
        fold ^= e.value();
    }
    d.mix(fold);
    d.mix(inflight_.size());
    d.mix(nextTag_);
    d.mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(lastScheduled_)));
    d.mix(liveEntries_);
    d.mix(anyhitSuspended_);
    d.mix(anyhitCommitted_);
    d.mix(anyhitIgnored_);
    return d.value();
}

std::vector<RtUnit::Completion>
RtUnit::drainCompletions()
{
    std::vector<Completion> out = std::move(completions_);
    completions_.clear();
    return out;
}

void
RtUnit::saveState(
    serial::Writer &w,
    const std::function<std::uint32_t(const vptx::Warp *)> &slot_of) const
{
    w.u64(entries_.size());
    for (const WarpEntry &e : entries_) {
        w.b(e.valid);
        if (!e.valid)
            continue;
        w.u32(slot_of(e.warp));
        w.i32(e.splitId);
        w.u32(e.mask);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const LaneState &ls = e.lanes[lane];
            w.u8(static_cast<std::uint8_t>(ls.status));
            w.u32(ls.chunksOutstanding);
            w.u64(ls.opDoneAt);
            w.u32(static_cast<std::uint32_t>(ls.nodeType));
            w.b(ls.anyHitCommit);
        }
        w.u64(e.submitTime);
        w.u32(e.lanesLive);
        w.u64(e.writebackQueue.size());
        for (Addr a : e.writebackQueue)
            w.u64(a);
        w.b(e.inWriteback);
        w.u64(e.spillWrites);
        w.u64(e.deferredWrites);
    }
    w.u64(memQueue_.size());
    for (const MemQueueEntry &q : memQueue_) {
        w.u64(q.sector);
        w.u64(q.targets.size());
        for (auto [slot, lane] : q.targets) {
            w.u32(slot);
            w.u32(lane);
        }
    }
    w.u64(responseFifo_.size());
    for (auto [slot, lane] : responseFifo_) {
        w.u32(slot);
        w.u32(lane);
    }
    w.u64(writeQueue_.size());
    for (Addr a : writeQueue_)
        w.u64(a);
    w.u64(completions_.size());
    for (const Completion &c : completions_) {
        w.u32(slot_of(c.warp));
        w.i32(c.splitId);
    }
    // inflight_ is a hash map: write sorted by tag for a canonical stream.
    std::vector<std::uint64_t> tags;
    tags.reserve(inflight_.size());
    for (const auto &[tag, targets] : inflight_)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    w.u64(tags.size());
    for (std::uint64_t tag : tags) {
        const auto &targets = inflight_.at(tag);
        w.u64(tag);
        w.u64(targets.size());
        for (auto [slot, lane] : targets) {
            w.u32(slot);
            w.u32(lane);
        }
    }
    w.u64(nextTag_);
    w.i32(lastScheduled_);
    w.u32(liveEntries_);
    w.u64(anyhitSuspended_);
    w.u64(anyhitCommitted_);
    w.u64(anyhitIgnored_);
}

void
RtUnit::loadState(
    serial::Reader &r,
    const std::function<vptx::Warp *(std::uint32_t)> &warp_of)
{
    std::uint64_t num_entries = r.u64();
    vksim_assert(num_entries == entries_.size());
    for (unsigned slot = 0; slot < entries_.size(); ++slot) {
        WarpEntry &e = entries_[slot];
        e = WarpEntry{};
        e.valid = r.b();
        if (!e.valid)
            continue;
        e.warp = warp_of(r.u32());
        e.splitId = r.i32();
        e.mask = r.u32();
        // Re-link into the freshly restored warp exactly as submit() does.
        e.state = &e.warp->pendingTraverses.at(e.splitId);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            LaneState &ls = e.lanes[lane];
            ls.status = static_cast<LaneStatus>(r.u8());
            ls.chunksOutstanding = r.u32();
            ls.opDoneAt = r.u64();
            ls.nodeType = static_cast<NodeType>(r.u32());
            ls.anyHitCommit = r.b();
            e.sinks[lane].unit = this;
            e.sinks[lane].slot = slot;
            e.sinks[lane].lane = lane;
            RayTraversal *trav = e.state->ray(lane);
            if (((e.mask >> lane) & 1u) && trav)
                trav->setSink(&e.sinks[lane]);
        }
        e.submitTime = r.u64();
        e.lanesLive = r.u32();
        std::uint64_t wb = r.u64();
        for (std::uint64_t i = 0; i < wb; ++i)
            e.writebackQueue.push_back(r.u64());
        e.inWriteback = r.b();
        e.spillWrites = r.u64();
        e.deferredWrites = r.u64();
    }
    memQueue_.clear();
    std::uint64_t num_mem = r.u64();
    for (std::uint64_t i = 0; i < num_mem; ++i) {
        MemQueueEntry q;
        q.sector = r.u64();
        q.targets.resize(r.u64());
        for (auto &[slot, lane] : q.targets) {
            slot = r.u32();
            lane = r.u32();
        }
        memQueue_.push_back(std::move(q));
    }
    responseFifo_.clear();
    std::uint64_t num_fifo = r.u64();
    for (std::uint64_t i = 0; i < num_fifo; ++i) {
        unsigned slot = r.u32();
        unsigned lane = r.u32();
        responseFifo_.emplace_back(slot, lane);
    }
    writeQueue_.clear();
    std::uint64_t num_writes = r.u64();
    for (std::uint64_t i = 0; i < num_writes; ++i)
        writeQueue_.push_back(r.u64());
    completions_.clear();
    std::uint64_t num_done = r.u64();
    for (std::uint64_t i = 0; i < num_done; ++i) {
        Completion c;
        c.warp = warp_of(r.u32());
        c.splitId = r.i32();
        completions_.push_back(c);
    }
    inflight_.clear();
    std::uint64_t num_inflight = r.u64();
    for (std::uint64_t i = 0; i < num_inflight; ++i) {
        std::uint64_t tag = r.u64();
        auto &targets = inflight_[tag];
        targets.resize(r.u64());
        for (auto &[slot, lane] : targets) {
            slot = r.u32();
            lane = r.u32();
        }
    }
    nextTag_ = r.u64();
    lastScheduled_ = r.i32();
    liveEntries_ = r.u32();
    anyhitSuspended_ = r.u64();
    anyhitCommitted_ = r.u64();
    anyhitIgnored_ = r.u64();
}

} // namespace vksim
