#include "cache/cache.h"

#include "util/log.h"

namespace vksim {

namespace {

const char *
originName(AccessOrigin o)
{
    return o == AccessOrigin::Shader ? "shader" : "rtunit";
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config), stats_(config.name)
{
    Addr num_lines = config_.sizeBytes / kSectorBytes;
    vksim_assert(num_lines > 0);
    if (config_.assoc == 0) {
        numSets_ = 1;
        ways_ = static_cast<unsigned>(num_lines);
    } else {
        ways_ = config_.assoc;
        numSets_ = static_cast<unsigned>(num_lines / ways_);
        vksim_assert(numSets_ > 0);
    }
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / kSectorBytes) % numSets_);
}

Cache::Line *
Cache::probe(Addr addr)
{
    Addr tag = addr / kSectorBytes;
    Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

void
Cache::insert(Addr addr, Cycle now)
{
    Addr tag = addr / kSectorBytes;
    Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) * ways_];
    Line *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->tag = tag;
    victim->valid = true;
    victim->lastUse = now;
}

CacheOutcome
Cache::access(Addr addr, bool write, AccessOrigin origin, std::uint64_t tag,
              Cycle now)
{
    addr = sectorAlign(addr);
    std::string origin_name = originName(origin);
    stats_.counter("accesses." + origin_name).inc();
    if (write)
        stats_.counter("writes." + origin_name).inc();

    Line *line = probe(addr);
    if (line) {
        line->lastUse = now;
        stats_.counter("hits." + origin_name).inc();
        return CacheOutcome::Hit;
    }

    if (write) {
        // Write-through, no-allocate: forwarded downstream by the caller.
        stats_.counter("write_miss." + origin_name).inc();
        return CacheOutcome::MissNew;
    }

    bool compulsory = everSeen_.insert(addr).second;
    stats_
        .counter((compulsory ? "miss_compulsory." : "miss_capacity_conflict.")
                 + origin_name)
        .inc();

    auto it = mshrs_.find(addr);
    if (it != mshrs_.end()) {
        if (it->second.targets.size() >= config_.mshrTargets) {
            stats_.counter("mshr_target_stalls").inc();
            return CacheOutcome::Stall;
        }
        it->second.targets.push_back(tag);
        stats_.counter("mshr_merges").inc();
        return CacheOutcome::MissMerged;
    }
    if (mshrs_.size() >= config_.numMshrs) {
        stats_.counter("mshr_full_stalls").inc();
        return CacheOutcome::Stall;
    }
    mshrs_[addr].targets.push_back(tag);
    return CacheOutcome::MissNew;
}

void
Cache::cancelMshr(Addr addr)
{
    mshrs_.erase(sectorAlign(addr));
}

std::vector<std::uint64_t>
Cache::fill(Addr addr, Cycle now)
{
    addr = sectorAlign(addr);
    insert(addr, now);
    auto it = mshrs_.find(addr);
    if (it == mshrs_.end())
        return {};
    std::vector<std::uint64_t> targets = std::move(it->second.targets);
    mshrs_.erase(it);
    return targets;
}

void
Cache::reset()
{
    for (Line &l : lines_)
        l = Line{};
    mshrs_.clear();
    everSeen_.clear();
    stats_.reset();
}

} // namespace vksim
