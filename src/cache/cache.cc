#include "cache/cache.h"

#include <algorithm>

#include "util/log.h"

namespace vksim {

namespace {

const char *
originName(AccessOrigin o)
{
    return o == AccessOrigin::Shader ? "shader" : "rtunit";
}

} // namespace

Cache::Cache(const CacheConfig &config)
    : config_(config), stats_(config.name)
{
    vksim_assert(config_.lineBytes >= kSectorBytes);
    vksim_assert(config_.lineBytes % kSectorBytes == 0);
    sectorsPerLine_ =
        static_cast<unsigned>(config_.lineBytes / kSectorBytes);
    vksim_assert(sectorsPerLine_ <= 32);
    sectored_ = sectorsPerLine_ > 1;
    fullMask_ = sectorsPerLine_ == 32
                    ? ~std::uint32_t(0)
                    : (std::uint32_t(1) << sectorsPerLine_) - 1;

    Addr num_lines = config_.sizeBytes / config_.lineBytes;
    vksim_assert(num_lines > 0);
    if (config_.assoc == 0) {
        numSets_ = 1;
        ways_ = static_cast<unsigned>(num_lines);
    } else {
        ways_ = config_.assoc;
        numSets_ = static_cast<unsigned>(num_lines / ways_);
        vksim_assert(numSets_ > 0);
    }
    lines_.resize(static_cast<std::size_t>(numSets_) * ways_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / config_.lineBytes) % numSets_);
}

unsigned
Cache::sectorOf(Addr addr) const
{
    return static_cast<unsigned>((addr % config_.lineBytes)
                                 / kSectorBytes);
}

Cache::Line *
Cache::probeLine(Addr addr)
{
    Addr tag = addr / config_.lineBytes;
    Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) * ways_];
    for (unsigned w = 0; w < ways_; ++w)
        if (base[w].validMask != 0 && base[w].tag == tag)
            return &base[w];
    return nullptr;
}

const Cache::Line *
Cache::probeLine(Addr addr) const
{
    return const_cast<Cache *>(this)->probeLine(addr);
}

bool
Cache::contains(Addr addr) const
{
    addr = sectorAlign(addr);
    const Line *line = probeLine(addr);
    return line != nullptr
           && ((line->validMask >> sectorOf(addr)) & 1u) != 0;
}

Cache::Line *
Cache::insert(Addr addr, Cycle now)
{
    Addr tag = addr / config_.lineBytes;
    Line *base = &lines_[static_cast<std::size_t>(setIndex(addr)) * ways_];
    Line *victim = &base[0];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].validMask == 0) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (sectored_ && victim->validMask != 0) {
        stats_.counter("line_evictions").inc();
        if (victim->dirtyMask != 0 && victim->dirtyMask != fullMask_)
            stats_.counter("evict_partial_dirty").inc();
    }
    victim->tag = tag;
    victim->validMask = 0;
    victim->dirtyMask = 0;
    victim->lastUse = now;
    return victim;
}

CacheOutcome
Cache::access(Addr addr, bool write, AccessOrigin origin, std::uint64_t tag,
              Cycle now)
{
    addr = sectorAlign(addr);
    std::string origin_name = originName(origin);

    Line *line = probeLine(addr);
    std::uint32_t sector_bit = std::uint32_t(1) << sectorOf(addr);
    if (line != nullptr && (line->validMask & sector_bit) != 0) {
        line->lastUse = now;
        if (write)
            line->dirtyMask |= sector_bit;
        stats_.counter("accesses." + origin_name).inc();
        if (write)
            stats_.counter("writes." + origin_name).inc();
        stats_.counter("hits." + origin_name).inc();
        return CacheOutcome::Hit;
    }

    if (write) {
        // Write-through, no-allocate: forwarded downstream by the caller.
        stats_.counter("accesses." + origin_name).inc();
        stats_.counter("writes." + origin_name).inc();
        stats_.counter("write_miss." + origin_name).inc();
        return CacheOutcome::MissNew;
    }

    // Resolve MSHR capacity before touching any miss statistic: a stalled
    // access is retried verbatim, so counting it here would double-count
    // the miss on every retry cycle — and the first stall's everSeen_
    // insertion would downgrade the eventual successful access from
    // compulsory to capacity/conflict.
    auto it = mshrs_.find(addr);
    if (it != mshrs_.end()
        && it->second.targets.size() >= config_.mshrTargets) {
        stats_.counter("mshr_target_stalls").inc();
        return CacheOutcome::Stall;
    }
    if (it == mshrs_.end() && mshrs_.size() >= config_.numMshrs) {
        stats_.counter("mshr_full_stalls").inc();
        return CacheOutcome::Stall;
    }

    stats_.counter("accesses." + origin_name).inc();
    if (it != mshrs_.end()) {
        // Secondary miss folded into an in-flight fill. Counted only as
        // a merge: the sector was never resident, so classifying it as a
        // capacity/conflict miss (as the everSeen_ test would) skewed
        // the Fig. 14 miss-cause breakdown by the full merge count.
        it->second.targets.push_back(tag);
        stats_.counter("mshr_merges").inc();
        return CacheOutcome::MissMerged;
    }

    bool compulsory = everSeen_.insert(addr).second;
    stats_
        .counter((compulsory ? "miss_compulsory." : "miss_capacity_conflict.")
                 + origin_name)
        .inc();
    if (sectored_) {
        // Sector/line split (only meaningful with multi-sector lines, so
        // the counters are not even created in the seed configuration):
        // every primary read miss is a sector miss; the subset with no
        // matching tag at all also missed the line.
        stats_.counter("sector_miss." + origin_name).inc();
        if (line == nullptr)
            stats_.counter("line_miss." + origin_name).inc();
    }
    mshrs_[addr].targets.push_back(tag);
    return CacheOutcome::MissNew;
}

void
Cache::cancelMshr(Addr addr)
{
    mshrs_.erase(sectorAlign(addr));
}

std::vector<std::uint64_t>
Cache::fill(Addr addr, Cycle now)
{
    addr = sectorAlign(addr);
    auto it = mshrs_.find(addr);
    std::size_t merged = it == mshrs_.end() ? 0 : it->second.targets.size();

    std::uint32_t fill_bits = config_.fillPolicy == CacheFillPolicy::LineFill
                                  ? fullMask_
                                  : std::uint32_t(1) << sectorOf(addr);
    Line *line = probeLine(addr);
    if (line != nullptr) {
        // Sector fill into an already-tagged line (only reachable with
        // multi-sector lines: a single-sector resident line never has an
        // outstanding MSHR).
        line->validMask |= fill_bits;
        line->lastUse = now;
    } else {
        // Streaming reservation: allocate the tag only when the merged
        // target count proves reuse; a low-reuse fill answers its
        // targets without touching the tag array.
        bool allocate = config_.streamingThreshold == 0
                        || merged >= config_.streamingThreshold;
        if (allocate) {
            insert(addr, now)->validMask |= fill_bits;
            if (config_.streamingThreshold != 0)
                stats_.counter("streaming_alloc_fills").inc();
        } else {
            stats_.counter("streaming_bypass_fills").inc();
        }
    }

    if (it == mshrs_.end())
        return {};
    std::vector<std::uint64_t> targets = std::move(it->second.targets);
    mshrs_.erase(it);
    return targets;
}

std::uint64_t
Cache::mshrTargetTotal() const
{
    std::uint64_t total = 0;
    for (const auto &[addr, mshr] : mshrs_)
        total += mshr.targets.size();
    return total;
}

std::vector<Addr>
Cache::mshrAddrs() const
{
    std::vector<Addr> addrs;
    addrs.reserve(mshrs_.size());
    for (const auto &[addr, mshr] : mshrs_)
        addrs.push_back(addr);
    return addrs;
}

void
Cache::checkInvariants(check::Reporter &rep, const std::string &path,
                       bool deep) const
{
    if (mshrs_.size() > config_.numMshrs)
        rep.report(path + ".mshrs",
                   std::to_string(mshrs_.size()) + " MSHRs in use, limit "
                       + std::to_string(config_.numMshrs));
    for (const auto &[addr, mshr] : mshrs_) {
        if (addr != sectorAlign(addr))
            rep.report(path + ".mshrs",
                       "MSHR address 0x" + std::to_string(addr)
                           + " not sector aligned");
        if (mshr.targets.empty())
            rep.report(path + ".mshrs", "MSHR with zero merged targets");
        if (mshr.targets.size() > config_.mshrTargets)
            rep.report(path + ".mshrs",
                       "MSHR holds " + std::to_string(mshr.targets.size())
                           + " targets, limit "
                           + std::to_string(config_.mshrTargets));
    }
    for (const Line &l : lines_) {
        if ((l.validMask & ~fullMask_) != 0)
            rep.report(path + ".lines",
                       "valid mask " + std::to_string(l.validMask)
                           + " has bits beyond the "
                           + std::to_string(sectorsPerLine_)
                           + "-sector line");
        if ((l.dirtyMask & ~l.validMask) != 0)
            rep.report(path + ".lines",
                       "dirty mask " + std::to_string(l.dirtyMask)
                           + " marks invalid sectors (valid mask "
                           + std::to_string(l.validMask) + ")");
    }
    if (!deep)
        return;
    // Deep scan: a (set, tag) pair must map to at most one valid line;
    // duplicates would make hits/evictions depend on probe order.
    for (unsigned set = 0; set < numSets_; ++set) {
        const Line *base = &lines_[static_cast<std::size_t>(set) * ways_];
        for (unsigned a = 0; a < ways_; ++a) {
            if (base[a].validMask == 0)
                continue;
            for (unsigned b = a + 1; b < ways_; ++b)
                if (base[b].validMask != 0 && base[b].tag == base[a].tag)
                    rep.report(path + ".lines",
                               "duplicate valid line for tag "
                                   + std::to_string(base[a].tag) + " in set "
                                   + std::to_string(set));
        }
    }
}

std::uint64_t
Cache::stateDigest() const
{
    check::Digest d;
    // Lines are in a deterministic array: mix in order (cheap, O(lines)).
    // The sector masks join the digest only for sectored caches, so the
    // seed (single-sector) configuration digests exactly as it always
    // did — digest traces stay byte-identical with the policies off.
    for (const Line &l : lines_) {
        if (l.validMask == 0)
            continue;
        d.mix(l.tag);
        d.mix(l.lastUse);
        if (sectored_) {
            d.mix(l.validMask);
            d.mix(l.dirtyMask);
        }
    }
    // MSHRs live in a hash map: XOR-fold per-entry digests so the result
    // is independent of iteration order.
    std::uint64_t fold = 0;
    for (const auto &[addr, mshr] : mshrs_) {
        check::Digest e;
        e.mix(addr);
        for (std::uint64_t t : mshr.targets)
            e.mix(t);
        fold ^= e.value();
    }
    d.mix(fold);
    d.mix(mshrs_.size());
    return d.value();
}

void
Cache::reset()
{
    for (Line &l : lines_)
        l = Line{};
    mshrs_.clear();
    everSeen_.clear();
    stats_.reset();
}

void
Cache::saveState(serial::Writer &w) const
{
    w.u64(lines_.size());
    for (const Line &l : lines_) {
        w.u64(l.tag);
        w.u32(l.validMask);
        w.u32(l.dirtyMask);
        w.u64(l.lastUse);
    }
    std::vector<Addr> mshr_addrs;
    mshr_addrs.reserve(mshrs_.size());
    for (const auto &[addr, mshr] : mshrs_)
        mshr_addrs.push_back(addr);
    std::sort(mshr_addrs.begin(), mshr_addrs.end());
    w.u64(mshr_addrs.size());
    for (Addr addr : mshr_addrs) {
        const Mshr &m = mshrs_.at(addr);
        w.u64(addr);
        w.u64(m.targets.size());
        for (std::uint64_t t : m.targets)
            w.u64(t);
    }
    std::vector<Addr> seen(everSeen_.begin(), everSeen_.end());
    std::sort(seen.begin(), seen.end());
    w.u64(seen.size());
    for (Addr a : seen)
        w.u64(a);
    stats_.saveState(w);
}

void
Cache::loadState(serial::Reader &r)
{
    std::uint64_t num_lines = r.u64();
    vksim_assert(num_lines == lines_.size());
    for (Line &l : lines_) {
        l.tag = r.u64();
        l.validMask = r.u32();
        l.dirtyMask = r.u32();
        l.lastUse = r.u64();
    }
    mshrs_.clear();
    std::uint64_t num_mshrs = r.u64();
    for (std::uint64_t i = 0; i < num_mshrs; ++i) {
        Addr addr = r.u64();
        Mshr &m = mshrs_[addr];
        m.targets.resize(r.u64());
        for (std::uint64_t &t : m.targets)
            t = r.u64();
    }
    everSeen_.clear();
    std::uint64_t num_seen = r.u64();
    for (std::uint64_t i = 0; i < num_seen; ++i)
        everSeen_.insert(r.u64());
    stats_.loadState(r);
}

} // namespace vksim
