/**
 * @file
 * Set-associative / fully-associative sectored cache with MSHRs, miss
 * classification (compulsory vs capacity/conflict) and per-origin
 * accounting (shader loads vs RT unit loads), as needed for the paper's
 * Figure 14 cache breakdown and the Figure 15 memory configurations.
 *
 * Requests are 32-byte sectors (the RT unit splits larger node reads into
 * 32 B chunks, Sec. III-C3; the LDST unit coalesces lane accesses into
 * the same granularity).
 *
 * Tagging granularity is a policy knob: with the default
 * `lineBytes == kSectorBytes` every sector carries its own tag (the
 * original GPGPU-Sim-4.0-era model this repo seeded with, bit-identical
 * by contract). Larger lines turn the tag array into a true sectored
 * cache — one tag per line, per-sector valid/dirty bits — with a
 * selectable fill policy and an optional streaming reservation policy
 * (limited tag allocation for low-reuse fills, per the Accel-Sim memory
 * study, arXiv 1810.07269). See DESIGN.md, "Memory model contract".
 */

#ifndef VKSIM_CACHE_CACHE_H
#define VKSIM_CACHE_CACHE_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "check/check.h"
#include "core/clockedunit.h"
#include "util/serial.h"
#include "util/stats.h"
#include "util/types.h"

namespace vksim {

/** Who issued a memory access (paper distinguishes these). */
enum class AccessOrigin : std::uint8_t
{
    Shader = 0, ///< SM load/store instructions
    RtUnit = 1  ///< BVH node fetches, stack spills, hit stores
};

/** Sector (request) size throughout the memory system. */
inline constexpr Addr kSectorBytes = 32;

/** Align an address down to its sector. */
inline Addr
sectorAlign(Addr a)
{
    return a & ~(kSectorBytes - 1);
}

/**
 * What a fill brings into a sectored line (only meaningful when
 * `lineBytes > kSectorBytes`; single-sector lines have nothing else to
 * fill).
 */
enum class CacheFillPolicy : std::uint8_t
{
    /** Validate only the missed sector (classic sector fill). */
    SectorFill = 0,
    /**
     * Validate the whole line on a sector miss (line-fill-on-sector-miss:
     * models fetching the full line; the extra DRAM traffic of the
     * over-fetch is not modeled — see DESIGN.md).
     */
    LineFill = 1
};

/** Cache geometry and timing. */
struct CacheConfig
{
    std::string name = "cache";
    Addr sizeBytes = 64 * 1024;
    unsigned assoc = 0;       ///< 0 = fully associative
    unsigned latency = 20;    ///< hit latency in cycles
    unsigned numMshrs = 64;
    unsigned mshrTargets = 16; ///< max merged requests per MSHR

    /**
     * Bytes per tag (line size). The default, kSectorBytes, reproduces
     * the seed per-sector tagging bit-identically (one tag per 32 B
     * sector, no sector bookkeeping in stats or digests). Larger values
     * (a power-of-two multiple of kSectorBytes, at most 32 sectors per
     * line) enable line-granularity tags with per-sector valid/dirty
     * bits plus the `sector_miss`/`line_miss` stat split.
     */
    Addr lineBytes = kSectorBytes;

    /** Fill policy for sectored lines (ignored at lineBytes == 32). */
    CacheFillPolicy fillPolicy = CacheFillPolicy::SectorFill;

    /**
     * Streaming reservation policy (0 = off): a fill allocates a tag
     * only when its MSHR merged at least this many targets while the
     * miss was outstanding — a low-reuse (streaming) fill bypasses the
     * tag array and only answers its merged targets. Bypass/allocation
     * decisions are counted in `streaming_bypass_fills` /
     * `streaming_alloc_fills`.
     */
    unsigned streamingThreshold = 0;
};

/** Outcome of a timing access. */
enum class CacheOutcome
{
    Hit,        ///< data after `latency` cycles
    MissNew,    ///< MSHR allocated, request must go to the next level
    MissMerged, ///< appended to an existing MSHR
    Stall       ///< no MSHR / target slot free; retry later
};

/**
 * Tag-array + MSHR model. The cache stores no data (functional state
 * lives in GlobalMemory); it tracks presence, LRU and outstanding misses.
 *
 * As a ClockedUnit the cache is *passive*: it has no pipeline of its
 * own (timing is imposed by its owner), so cycle() is a no-op, idle()
 * means "no outstanding MSHRs" and it never schedules an event.
 */
class Cache : public ClockedUnit
{
  public:
    explicit Cache(const CacheConfig &config);

    /** ClockedUnit: passive — owners drive all timing. */
    void cycle(Cycle now) override { (void)now; }
    bool idle() const override { return mshrs_.empty(); }
    Cycle nextEventCycle() const override { return kNoPendingEvent; }

    /**
     * Access `addr` (sector aligned) at time `now`.
     * Writes are write-through/no-allocate: they update LRU on hit and
     * never allocate; the caller forwards them downstream regardless.
     * On a write hit to a sectored line the sector's dirty bit is set —
     * bookkeeping for the eviction statistics only, the data itself
     * already went downstream.
     *
     * @param tag Caller cookie returned by readyTargets() when the miss
     *            data arrives.
     */
    CacheOutcome access(Addr addr, bool write, AccessOrigin origin,
                        std::uint64_t tag, Cycle now);

    /**
     * Fill for a previously missed sector. Returns the merged caller
     * tags now satisfied (available after `latency`). Under the
     * streaming reservation policy a fill whose MSHR merged fewer than
     * `streamingThreshold` targets bypasses the tag array (the targets
     * are still answered).
     */
    std::vector<std::uint64_t> fill(Addr addr, Cycle now);

    /**
     * Abandon the MSHR just allocated for `addr` (downstream refused the
     * request); the access will be retried from scratch.
     */
    void cancelMshr(Addr addr);

    /** True if an MSHR is outstanding for this sector. */
    bool
    mshrPending(Addr addr) const
    {
        return mshrs_.count(sectorAlign(addr)) != 0;
    }

    /**
     * Non-mutating presence peek: true if the sector is resident (line
     * tag present *and* the sector's valid bit set). Unlike access(),
     * touches neither LRU state nor any statistic — for callers that
     * must know whether an access would miss before committing it.
     */
    bool contains(Addr addr) const;

    unsigned
    mshrsInUse() const
    {
        return static_cast<unsigned>(mshrs_.size());
    }

    const CacheConfig &config() const { return config_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** Invalidate everything (between launches). */
    void reset();

    /** Sum of merged targets across all outstanding MSHRs. */
    std::uint64_t mshrTargetTotal() const;

    /** Sector addresses of all outstanding MSHRs (unspecified order). */
    std::vector<Addr> mshrAddrs() const;

    /**
     * Validate internal bookkeeping (MSHR capacity/target limits and
     * sector-mask sanity; with `deep`, a full scan for duplicate valid
     * lines within a set). Violations go to `rep` under `path`.
     */
    void checkInvariants(check::Reporter &rep, const std::string &path,
                         bool deep) const;

    /**
     * Order-insensitive digest of the architectural state (valid lines,
     * LRU stamps, outstanding MSHRs; sector valid/dirty masks when the
     * cache is sectored). Equal states hash equal regardless of
     * hash-map iteration order. With the default single-sector lines
     * the digest is computed exactly as the seed model computed it.
     */
    std::uint64_t stateDigest() const;

    /**
     * Serialize / restore tag array, MSHRs, miss-classification history
     * and statistics (checkpointing). Lookup-only unordered containers
     * are written sorted by key so the byte stream is independent of
     * hash-map iteration order.
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Line
    {
        Addr tag = ~Addr(0);
        std::uint32_t validMask = 0; ///< per-sector valid bits (0 = free)
        std::uint32_t dirtyMask = 0; ///< per-sector written-while-resident
        Cycle lastUse = 0;
    };

    struct Mshr
    {
        std::vector<std::uint64_t> targets;
    };

    unsigned setIndex(Addr addr) const;
    unsigned sectorOf(Addr addr) const;
    Line *probeLine(Addr addr);
    const Line *probeLine(Addr addr) const;
    Line *insert(Addr addr, Cycle now);

    CacheConfig config_;
    unsigned numSets_;
    unsigned ways_;
    unsigned sectorsPerLine_;
    bool sectored_; ///< lineBytes > kSectorBytes
    std::uint32_t fullMask_;
    std::vector<Line> lines_; ///< numSets_ x ways_
    std::unordered_map<Addr, Mshr> mshrs_;
    std::unordered_set<Addr> everSeen_; ///< for compulsory classification
    StatGroup stats_;
};

} // namespace vksim

#endif // VKSIM_CACHE_CACHE_H
