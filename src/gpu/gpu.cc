#include "gpu/gpu.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "gpu/scheduler.h"
#include "util/log.h"
#include "util/simerror.h"
#include "util/threadpool.h"

namespace vksim {

namespace {

/** Tag bit distinguishing RT unit requests from LDST requests. */
constexpr std::uint64_t kRtTagBit = 1ull << 63;

} // namespace

GpuConfig
baselineGpuConfig()
{
    GpuConfig cfg;
    cfg.numSms = 30;
    cfg.regsPerSm = 65536;
    cfg.l1 = CacheConfig{"l1", 64 * 1024, 0, 20, 64, 16};
    cfg.fabric.numPartitions = 6;
    cfg.fabric.l2 =
        CacheConfig{"l2", 3 * 1024 * 1024 / 6, 16, 160, 128, 16};
    cfg.fabric.dram.banks = 16;
    cfg.fabric.dramClockRatio = 3500.0 / 1365.0;
    cfg.rt.maxWarps = 8;
    return cfg;
}

GpuConfig
mobileGpuConfig()
{
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 8;
    cfg.regsPerSm = 32768;
    cfg.fabric.numPartitions = 2;
    cfg.fabric.l2 =
        CacheConfig{"l2", 1 * 1024 * 1024 / 2, 16, 160, 128, 16};
    cfg.fabric.dram.burstCycles = 4; // half the DRAM bandwidth
    return cfg;
}

std::vector<std::string>
GpuConfig::validate() const
{
    std::vector<std::string> problems;
    auto require = [&](bool ok, const std::string &message) {
        if (!ok)
            problems.push_back(message);
    };
    auto check_cache = [&](const CacheConfig &c, const std::string &who) {
        require(c.sizeBytes != 0,
                who + ".sizeBytes must be >= 1 (a zero-byte cache has no "
                      "lines to hit)");
        require(c.numMshrs != 0,
                who + ".numMshrs must be >= 1 (every miss needs an MSHR; "
                      "0 stalls all misses forever)");
        require(c.mshrTargets != 0,
                who + ".mshrTargets must be >= 1 (an MSHR must accept at "
                      "least its own request)");
        require(c.lineBytes >= kSectorBytes,
                who + ".lineBytes must be >= 32 (a line holds at least "
                      "one 32-byte sector)");
        require(c.lineBytes % kSectorBytes == 0,
                who + ".lineBytes must be a multiple of 32 (lines are "
                      "tiled from 32-byte sectors)");
        require((c.lineBytes & (c.lineBytes - 1)) == 0,
                who + ".lineBytes must be a power of two (set indexing "
                      "shifts by the line size)");
        require(c.lineBytes <= 32 * kSectorBytes,
                who + ".lineBytes must be <= 1024 (per-sector valid and "
                      "dirty state is a 32-bit mask)");
        require(c.lineBytes == 0 || c.sizeBytes % c.lineBytes == 0,
                who + ".sizeBytes must be a multiple of lineBytes (the "
                      "cache is a whole number of lines)");
    };

    require(numSms != 0, "numSms must be >= 1 (0 SMs cannot run any warp)");
    require(maxWarpsPerSm != 0,
            "maxWarpsPerSm must be >= 1 (no warp could ever be admitted)");
    require(regsPerSm != 0,
            "regsPerSm must be >= 1 (the register file bounds occupancy)");
    require(issueWidth != 0,
            "issueWidth must be >= 1 (0 issues no instruction per cycle)");
    require(ldstQueueSize != 0,
            "ldstQueueSize must be >= 1 (memory instructions could never "
            "leave the pipeline)");
    require(sfuIssueInterval != 0,
            "sfuIssueInterval must be >= 1 (SFU throughput divider)");
    check_cache(l1, "l1");
    if (useRtCache)
        check_cache(rtCache, "rtCache");
    check_cache(fabric.l2, "fabric.l2");
    require(fabric.numPartitions != 0,
            "fabric.numPartitions must be >= 1 (addresses have no home "
            "L2 slice otherwise)");
    require(fabric.dram.banks != 0,
            "fabric.dram.banks must be >= 1");
    require(fabric.dram.rowBytes != 0,
            "fabric.dram.rowBytes must be >= 1");
    require(fabric.dram.burstCycles != 0,
            "fabric.dram.burstCycles must be >= 1 (a transfer must occupy "
            "the data bus)");
    require(fabric.dram.queueSize != 0,
            "fabric.dram.queueSize must be >= 1 (the channel could never "
            "accept a request)");
    require(fabric.dramClockRatio > 0.0,
            "fabric.dramClockRatio must be > 0 (DRAM would never tick)");
    require(fabric.dram.bankGroups == 0
                || fabric.dram.banks % fabric.dram.bankGroups == 0,
            "fabric.dram.bankGroups must divide banks (groups are "
            "bank % bankGroups, so ragged groups would be lopsided)");
    require(fabric.dram.tCcdL == 0 || fabric.dram.bankGroups != 0,
            "fabric.dram.tCcdL needs bankGroups >= 1 (the long CCD "
            "spacing applies within a bank group)");
    require(fabric.dram.tCcdL == 0 || fabric.dram.tCcdS == 0
                || fabric.dram.tCcdL >= fabric.dram.tCcdS,
            "fabric.dram.tCcdL must be >= tCcdS (same-group "
            "column-to-column spacing cannot be shorter than "
            "cross-group)");
    require(fabric.dram.tRefi == 0 || fabric.dram.tRfc != 0,
            "fabric.dram.tRfc must be >= 1 when tRefi is set (a refresh "
            "that takes zero cycles would be unobservable)");
    require(rt.maxWarps != 0,
            "rt.maxWarps must be >= 1 (0 warps per RT unit means "
            "traverseAS never completes)");
    require(rt.memQueueSize != 0,
            "rt.memQueueSize must be >= 1 (the RT unit stages node "
            "fetches through the Memory Access Queue)");
    require(rt.issuePerCycle != 0,
            "rt.issuePerCycle must be >= 1 (queued RT fetches would "
            "never reach the cache)");
    require(rt.opsPerCycle != 0,
            "rt.opsPerCycle must be >= 1 (the Response FIFO would never "
            "drain)");
    require(rt.shortStackEntries != 0,
            "rt.shortStackEntries must be >= 1 (traversal needs at least "
            "one short-stack slot)");
    require(epochCycles != 0,
            "epochCycles must be >= 1 (1 = lock-step; the engine clamps "
            "larger values to the fabric response-latency skew bound)");
    require(coreClockMhz > 0.0, "coreClockMhz must be > 0");
    require(maxCycles != 0,
            "maxCycles must be >= 1 (the watchdog would fire at cycle 0)");
    if (fccEnabled && its)
        problems.push_back(
            "FCC and ITS cannot be combined: the per-warp coalescing "
            "buffer assumes serialized traverses (disable one of them)");
    if (checkpoint.enabled() && timeline.enabled())
        problems.push_back(
            "checkpointing and the timeline sink cannot be combined: a "
            "resumed run cannot reconstruct the pre-snapshot timeline "
            "events, so the trace would be silently incomplete (disable "
            "one of them)");
    if (checkpoint.every != 0 && checkpoint.path.empty())
        problems.push_back(
            "checkpoint.every is set but checkpoint.path is empty: "
            "auto-snapshots need a file to land in");
    return problems;
}

double
RunResult::simtEfficiency() const
{
    double issued = static_cast<double>(core.get("issued"));
    return issued > 0
               ? core.get("issue_active_lanes") / (issued * kWarpSize)
               : 0.0;
}

double
RunResult::rtSimtEfficiency() const
{
    double slots = static_cast<double>(rt.get("slot_ray_cycles"));
    return slots > 0 ? rt.get("active_ray_cycles") / slots : 0.0;
}

double
RunResult::dramUtilization() const
{
    double total = static_cast<double>(dram.get("cycles"));
    return total > 0 ? dram.get("data_bus_busy") / total : 0.0;
}

double
RunResult::dramEfficiency() const
{
    double pending = static_cast<double>(dram.get("cycles_with_pending"));
    return pending > 0 ? dram.get("data_bus_busy") / pending : 0.0;
}

double
RunResult::rtActiveFraction() const
{
    double denom = static_cast<double>(rt.get("unit_cycles"));
    return denom > 0 ? rt.get("busy_cycles") / denom : 0.0;
}

// --- SmCore ---------------------------------------------------------------

SmCore::SmCore(unsigned sm_id, const GpuConfig &config,
               const vptx::LaunchContext &ctx, MemFabric *fabric)
    : smId_(sm_id), config_(config), ctx_(ctx), fabric_(fabric),
      executor_(ctx,
                vptx::ExecOptions{config.fccEnabled,
                                  config.rt.shortStackEntries}),
      stats_("sm" + std::to_string(sm_id)), l1_(config.l1),
      rtUnit_(config.rt, &ctx, &rtStats_)
{
    if (config_.useRtCache)
        rtCache_ = std::make_unique<Cache>(config_.rtCache);
    rtUnit_.setMemPort(this);
    rtUnit_.setLatencyHistogram(&rtLatency_);

    // Per-thread register demand: the raygen window plus the largest
    // callee window (shader calls bump the register window).
    const vptx::ShaderInfo &raygen =
        ctx_.program->shaders[static_cast<std::size_t>(
            ctx_.program->raygenShader)];
    unsigned max_callee = 0;
    for (const vptx::ShaderInfo &s : ctx_.program->shaders)
        if (&s != &ctx_.program->shaders[static_cast<std::size_t>(
                ctx_.program->raygenShader)])
            max_callee = std::max<unsigned>(max_callee, s.numRegs);
    unsigned regs_per_warp =
        std::max<unsigned>(1, raygen.numRegs + max_callee) * kWarpSize;
    warpLimit_ = std::min<unsigned>(config_.maxWarpsPerSm,
                                    config_.regsPerSm / regs_per_warp);
    warpLimit_ = std::max(warpLimit_, 1u);
}

void
SmCore::setTimeline(TimelineShard *shard)
{
    timeline_ = shard;
    rtUnit_.setTimeline(shard);
}

bool
SmCore::tryAddWarp(std::uint32_t warp_id, Cycle now)
{
    unsigned resident = 0;
    for (const WarpSlot &slot : warps_)
        if (slot.warp)
            ++resident;
    if (resident >= warpLimit_)
        return false;
    WarpSlot slot;
    slot.warp = std::make_unique<vptx::Warp>();
    slot.warpId = warp_id;
    slot.dispatchedAt = now;
    vptx::initWarp(*slot.warp, warp_id, ctx_,
                   config_.its ? vptx::WarpCflow::Mode::Its
                               : vptx::WarpCflow::Mode::Stack);
    // Reuse a free slot to keep indices stable for in-flight references.
    for (WarpSlot &existing : warps_)
        if (!existing.warp) {
            existing = std::move(slot);
            return true;
        }
    warps_.push_back(std::move(slot));
    return true;
}

bool
SmCore::idle() const
{
    for (const WarpSlot &ws : warps_)
        if (ws.warp)
            return false;
    return !rtUnit_.busy() && ldstOps_.empty() && l1Queue_.empty()
           && tagReady_.empty() && stagedRequests_.empty();
}

bool
SmCore::sleepable() const
{
    // idle() plus the two residues it tolerates: in-flight ALU/SFU
    // writebacks (which retire on their own clock) and RT-unit write
    // queues. With all of these empty, cycle() provably reduces to the
    // counter replay catchUpIdleCycles() performs.
    return idle() && writebacks_.empty() && rtUnit_.quiescent();
}

void
SmCore::catchUpIdleCycles(Cycle from, Cycle to)
{
    if (to <= from)
        return;
    // What cycle() does on a sleepable SM, n times over: the RT unit
    // heartbeat, the empty-issue counter, and any due timeline counter
    // samples (whose values are frozen while asleep).
    const Cycle n = to - from;
    rtStats_.counter("unit_cycles").inc(n);
    stats_.counter("idle_issue_cycles").inc(n);
    if (timeline_ && timeline_->sampleInterval() != 0) {
        const Cycle interval = timeline_->sampleInterval();
        for (Cycle t = ((from + interval - 1) / interval) * interval;
             t < to; t += interval) {
            timeline_->counter("sched.resident_warps", t,
                               residentWarps());
            timeline_->counter("l1.mshrs", t, l1_.mshrsInUse());
            if (rtCache_)
                timeline_->counter("rtcache.mshrs", t,
                                   rtCache_->mshrsInUse());
            timeline_->counter("rtunit.active_rays", t,
                               rtUnit_.activeRays());
        }
    }
}

void
SmCore::stageRequest(const MemRequest &req)
{
    // now_ is the cycle of the running cycle() call; the RT-unit port
    // callbacks land here too, so every staged request is tagged with
    // the cycle it was issued in.
    stagedRequests_.push_back(StagedRequest{now_, req});
}

void
SmCore::flushStagedRequests(Cycle now)
{
    for (const StagedRequest &sr : stagedRequests_)
        fabric_->inject(sr.req, now);
    stagedRequests_.clear();
    stagedCursor_ = 0;
}

bool
SmCore::flushStagedCycle(Cycle c)
{
    bool injected = false;
    while (stagedCursor_ < stagedRequests_.size()
           && stagedRequests_[stagedCursor_].at == c) {
        fabric_->inject(stagedRequests_[stagedCursor_].req, c);
        ++stagedCursor_;
        injected = true;
    }
    return injected;
}

void
SmCore::clearStaged()
{
    vksim_assert(stagedCursor_ == stagedRequests_.size());
    stagedRequests_.clear();
    stagedCursor_ = 0;
}

void
SmCore::scheduleTag(Cycle at, std::uint64_t tag)
{
    tagReady_.push(TagEvent{at, tagSeq_++, tag});
}

unsigned
SmCore::residentWarps() const
{
    unsigned n = 0;
    for (const WarpSlot &ws : warps_)
        if (ws.warp)
            ++n;
    return n;
}

bool
SmCore::rtIssueRead(Addr sector, std::uint64_t tag)
{
    Cache &cache = rtCache_ ? *rtCache_ : l1_;
    std::uint64_t full_tag = tag | kRtTagBit;
    // `now` approximated by the cycle recorded at the last SM cycle();
    // hit latency is added when the tag retires.
    CacheOutcome outcome =
        cache.access(sector, false, AccessOrigin::RtUnit, full_tag, now_);
    switch (outcome) {
      case CacheOutcome::Hit:
        scheduleTag(now_ + cache.config().latency, full_tag);
        return true;
      case CacheOutcome::MissNew: {
        MemRequest req;
        req.addr = sectorAlign(sector);
        req.write = false;
        req.origin = AccessOrigin::RtUnit;
        req.smId = smId_;
        stageRequest(req);
        return true;
      }
      case CacheOutcome::MissMerged:
        return true;
      case CacheOutcome::Stall:
        return false;
    }
    return false;
}

bool
SmCore::rtIssueWrite(Addr sector)
{
    Cache &cache = rtCache_ ? *rtCache_ : l1_;
    cache.access(sector, true, AccessOrigin::RtUnit, 0, now_);
    MemRequest req;
    req.addr = sectorAlign(sector);
    req.write = true;
    req.origin = AccessOrigin::RtUnit;
    req.smId = smId_;
    stageRequest(req);
    return true;
}

void
SmCore::handleMemInstr(unsigned slot, const vptx::StepResult &res,
                       Cycle now)
{
    // Coalesce lane accesses into unique 32 B sectors (separately for
    // loads and stores).
    std::vector<Addr> load_sectors;
    std::vector<Addr> store_sectors;
    for (const vptx::MemAccess &a : res.accesses) {
        Addr first = sectorAlign(a.addr);
        Addr last = sectorAlign(a.addr + a.size - 1);
        for (Addr s = first; s <= last; s += kSectorBytes) {
            auto &vec = a.write ? store_sectors : load_sectors;
            if (std::find(vec.begin(), vec.end(), s) == vec.end())
                vec.push_back(s);
        }
    }
    stats_.counter("ldst_sectors").inc(load_sectors.size()
                                       + store_sectors.size());

    if (!load_sectors.empty()) {
        std::uint64_t op_tag = nextLdstTag_++;
        LdstOp op;
        op.slot = slot;
        op.dstReg = res.dstReg;
        op.sectorsLeft = static_cast<unsigned>(load_sectors.size());
        ldstOps_.emplace(op_tag, op);
        if (res.dstReg >= 0)
            warps_[slot].pendingRegs.insert(res.dstReg);
        ++warps_[slot].pendingLoads;
        for (Addr s : load_sectors)
            l1Queue_.push_back({s, false, AccessOrigin::Shader, op_tag});
    } else if (res.dstReg >= 0) {
        // Address-only instruction: plain ALU-latency writeback.
        warps_[slot].pendingRegs.insert(res.dstReg);
        writebacks_.push_back(
            {now + config_.aluLatency, slot, res.dstReg, false});
    }
    for (Addr s : store_sectors)
        l1Queue_.push_back({s, true, AccessOrigin::Shader, 0});
}

bool
SmCore::issueFromWarp(unsigned slot, Cycle now)
{
    WarpSlot &ws = warps_[slot];
    vptx::Warp &warp = *ws.warp;
    if (warp.finished() || warp.cflow.runnableCount() == 0)
        return false;

    // Pick a split (rotate under ITS so co-resident splits interleave).
    unsigned runnable = warp.cflow.runnableCount();
    int split_idx =
        warp.cflow.runnableSplit(ws.nextSplit % runnable);
    ws.nextSplit++;

    // Single decode per issue attempt: scoreboard, structural-hazard
    // checks and the functional step all consume this micro-op.
    const vptx::WarpSplit &split = warp.cflow.split(split_idx);
    const vptx::MicroOp &uop = executor_.fetch(split.pc);

    // Scoreboard: stall on pending source or destination registers.
    for (int reg : {static_cast<int>(uop.dst), static_cast<int>(uop.src0),
                    static_cast<int>(uop.src1), static_cast<int>(uop.src2)})
        if (reg >= 0 && ws.pendingRegs.count(reg)) {
            stats_.counter("stall_scoreboard").inc();
            return false;
        }

    // Structural hazards.
    vptx::ExecUnit unit = uop.unit;
    switch (unit) {
      case vptx::ExecUnit::LDST:
        if (l1Queue_.size() >= config_.ldstQueueSize) {
            stats_.counter("stall_ldst_queue").inc();
            return false;
        }
        break;
      case vptx::ExecUnit::SFU:
        if (sfuReadyAt_ > now) {
            stats_.counter("stall_sfu").inc();
            return false;
        }
        break;
      case vptx::ExecUnit::RT:
        if (!rtUnit_.canAccept()) {
            stats_.counter("stall_rt_full").inc();
            return false;
        }
        break;
      default:
        break;
    }

    // Functional execution at issue (re-using the fetched micro-op).
    vptx::StepResult res = executor_.step(warp, split_idx, uop);
    stats_.counter("issued").inc();
    stats_.counter("issue_active_lanes").inc(res.activeLanes);
    switch (res.unit) {
      case vptx::ExecUnit::ALU: stats_.counter("issue_alu").inc(); break;
      case vptx::ExecUnit::SFU: stats_.counter("issue_sfu").inc(); break;
      case vptx::ExecUnit::LDST: stats_.counter("issue_ldst").inc(); break;
      case vptx::ExecUnit::RT: stats_.counter("issue_rt").inc(); break;
      case vptx::ExecUnit::CTRL: stats_.counter("issue_ctrl").inc(); break;
    }

    switch (res.unit) {
      case vptx::ExecUnit::ALU:
      case vptx::ExecUnit::CTRL:
        if (res.dstReg >= 0) {
            ws.pendingRegs.insert(res.dstReg);
            writebacks_.push_back(
                {now + config_.aluLatency, slot, res.dstReg, false});
        }
        break;
      case vptx::ExecUnit::SFU:
        sfuReadyAt_ = now + config_.sfuIssueInterval;
        if (res.dstReg >= 0) {
            ws.pendingRegs.insert(res.dstReg);
            writebacks_.push_back(
                {now + config_.sfuLatency, slot, res.dstReg, false});
        }
        break;
      case vptx::ExecUnit::LDST:
        handleMemInstr(slot, res, now);
        break;
      case vptx::ExecUnit::RT:
        vksim_assert(res.startedTraverse);
        rtUnit_.submit(&warp, res.traverseSplitId, now);
        break;
    }
    return true;
}

bool
SmCore::tryIssue(Cycle now, std::set<unsigned> &issued_slots)
{
    // Candidate order: GTO keeps the greedy warp first, then oldest
    // (lowest warp id); LRR rotates.
    std::vector<unsigned> order;
    for (unsigned i = 0; i < warps_.size(); ++i)
        if (warps_[i].warp)
            order.push_back(i);
    if (order.empty())
        return false;
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return warps_[a].warpId < warps_[b].warpId;
    });
    if (config_.sched == SchedPolicy::GTO) {
        if (greedyWarp_ >= 0) {
            auto it = std::find(order.begin(), order.end(),
                                static_cast<unsigned>(greedyWarp_));
            if (it != order.end()) {
                order.erase(it);
                order.insert(order.begin(),
                             static_cast<unsigned>(greedyWarp_));
            }
        }
    } else {
        std::rotate(order.begin(),
                    order.begin() + (rrCursor_ % order.size()),
                    order.end());
    }

    for (unsigned slot : order) {
        if (issued_slots.count(slot))
            continue;
        if (issueFromWarp(slot, now)) {
            issued_slots.insert(slot);
            if (config_.sched == SchedPolicy::GTO)
                greedyWarp_ = static_cast<int>(slot);
            else
                ++rrCursor_;
            return true;
        }
    }
    if (config_.sched == SchedPolicy::GTO)
        greedyWarp_ = -1;
    return false;
}

void
SmCore::pumpL1(Cycle now)
{
    // L1 has a handful of ports per cycle.
    constexpr unsigned kL1PortsPerCycle = 4;
    for (unsigned i = 0; i < kL1PortsPerCycle && !l1Queue_.empty(); ++i) {
        L1Req req = l1Queue_.front();
        CacheOutcome outcome =
            l1_.access(req.sector, req.write, req.origin, req.tag, now);
        bool consumed = true;
        switch (outcome) {
          case CacheOutcome::Hit:
            if (req.write) {
                MemRequest wr;
                wr.addr = req.sector;
                wr.write = true;
                wr.origin = req.origin;
                wr.smId = smId_;
                stageRequest(wr);
            } else {
                scheduleTag(now + l1_.config().latency, req.tag);
            }
            break;
          case CacheOutcome::MissNew: {
            MemRequest mr;
            mr.addr = req.sector;
            mr.write = req.write;
            mr.origin = req.origin;
            mr.smId = smId_;
            stageRequest(mr);
            break;
          }
          case CacheOutcome::MissMerged:
            break;
          case CacheOutcome::Stall:
            consumed = false;
            break;
        }
        if (!consumed)
            break;
        l1Queue_.pop_front();
    }
}

void
SmCore::drainFabric(Cycle now)
{
    for (const MemRequest &resp : fabric_->drainResponses(smId_, now)) {
        if (resp.write)
            continue;
        Cache &cache = (resp.origin == AccessOrigin::RtUnit && rtCache_)
                           ? *rtCache_
                           : l1_;
        for (std::uint64_t tag : cache.fill(resp.addr, now))
            scheduleTag(now + cache.config().latency, tag);
    }
}

void
SmCore::retireWritebacks(Cycle now)
{
    // ALU/SFU writebacks.
    for (std::size_t i = 0; i < writebacks_.size();) {
        if (writebacks_[i].at <= now) {
            WarpSlot &ws = warps_[writebacks_[i].slot];
            if (ws.warp)
                ws.pendingRegs.erase(writebacks_[i].reg);
            writebacks_[i] = writebacks_.back();
            writebacks_.pop_back();
        } else {
            ++i;
        }
    }

    // Memory tags (L1 hit latency elapsed or fill arrived): pop only the
    // due heap entries instead of re-queueing the whole deque every cycle.
    while (!tagReady_.empty() && tagReady_.top().at <= now) {
        std::uint64_t tag = tagReady_.top().tag;
        tagReady_.pop();
        if (tag & kRtTagBit) {
            rtUnit_.onResponse(tag & ~kRtTagBit, now);
            continue;
        }
        auto it = ldstOps_.find(tag);
        if (it == ldstOps_.end())
            continue;
        LdstOp &op = it->second;
        if (--op.sectorsLeft == 0) {
            WarpSlot &ws = warps_[op.slot];
            if (ws.warp) {
                if (op.dstReg >= 0)
                    ws.pendingRegs.erase(op.dstReg);
                if (ws.pendingLoads > 0)
                    --ws.pendingLoads;
            }
            ldstOps_.erase(it);
        }
    }
}

void
SmCore::cycle(Cycle now)
{
    now_ = now;
    drainFabric(now);
    retireWritebacks(now);

    rtUnit_.cycle(now);
    rtStats_.counter("unit_cycles").inc();
    for (const RtUnit::Completion &done : rtUnit_.drainCompletions())
        executor_.completeTraverse(*done.warp, done.splitId);

    std::set<unsigned> issued_slots;
    for (unsigned i = 0; i < config_.issueWidth; ++i)
        if (!tryIssue(now, issued_slots))
            break;
    if (issued_slots.empty())
        stats_.counter("idle_issue_cycles").inc();

    pumpL1(now);

    // Retire finished warps (slots are reused, never erased, so indices
    // held by in-flight writebacks stay valid).
    for (std::size_t s = 0; s < warps_.size(); ++s) {
        WarpSlot &ws = warps_[s];
        if (ws.warp && ws.warp->finished() && ws.pendingLoads == 0
            && !ws.warp->inRtUnit()) {
            if (timeline_)
                timeline_->complete("sched.slot" + std::to_string(s),
                                    "warp" + std::to_string(ws.warpId),
                                    ws.dispatchedAt, now);
            ws.warp.reset();
            ws.pendingRegs.clear();
            // Drop the retired warp's in-flight ALU/SFU writebacks: the
            // slot can be reused next cycle, and a stale entry would
            // release the new warp's scoreboard register early.
            writebacks_.erase(
                std::remove_if(writebacks_.begin(), writebacks_.end(),
                               [s](const PendingWriteback &wb) {
                                   return wb.slot == s;
                               }),
                writebacks_.end());
        }
    }

    // Sampled counter tracks: scheduler occupancy, L1 (+ RT cache)
    // MSHR pressure, RT-unit ray occupancy.
    if (timeline_ && timeline_->sampleDue(now)) {
        timeline_->counter("sched.resident_warps", now, residentWarps());
        timeline_->counter("l1.mshrs", now, l1_.mshrsInUse());
        if (rtCache_)
            timeline_->counter("rtcache.mshrs", now,
                               rtCache_->mshrsInUse());
        timeline_->counter("rtunit.active_rays", now,
                           rtUnit_.activeRays());
    }
}

void
SmCore::checkInvariants(check::Reporter &rep, Cycle now, bool deep) const
{
    const std::string path = "sm" + std::to_string(smId_);

    if (!stagedRequests_.empty())
        rep.report(path + ".staged",
                   std::to_string(stagedRequests_.size())
                       + " staged requests left after the barrier flush");

    // LDST ops: referential integrity and per-slot load accounting.
    std::vector<unsigned> loads(warps_.size(), 0);
    std::vector<std::set<int>> covered(warps_.size());
    for (const auto &[tag, op] : ldstOps_) {
        if (op.slot >= warps_.size() || !warps_[op.slot].warp) {
            rep.report(path + ".ldst",
                       "outstanding load targets dead warp slot "
                           + std::to_string(op.slot));
            continue;
        }
        if (op.sectorsLeft == 0)
            rep.report(path + ".ldst",
                       "outstanding load with zero sectors left");
        ++loads[op.slot];
        if (op.dstReg >= 0)
            covered[op.slot].insert(op.dstReg);
    }

    // Writebacks always target a live slot with the register still
    // pending (retire purges a dead warp's entries; a stale one would
    // release the successor warp's scoreboard early).
    for (const PendingWriteback &wb : writebacks_) {
        if (wb.slot >= warps_.size() || !warps_[wb.slot].warp) {
            rep.report(path + ".writeback",
                       "writeback targets dead warp slot "
                           + std::to_string(wb.slot));
            continue;
        }
        if (wb.at <= now)
            rep.report(path + ".writeback",
                       "writeback due at cycle " + std::to_string(wb.at)
                           + " not retired");
        if (!warps_[wb.slot].pendingRegs.count(wb.reg))
            rep.report(path + ".writeback",
                       "writeback for slot " + std::to_string(wb.slot)
                           + " register " + std::to_string(wb.reg)
                           + " which is not scoreboard-pending");
        covered[wb.slot].insert(wb.reg);
    }

    for (unsigned s = 0; s < warps_.size(); ++s) {
        const WarpSlot &ws = warps_[s];
        const std::string slot_path = path + ".slot" + std::to_string(s);
        if (!ws.warp) {
            if (!ws.pendingRegs.empty())
                rep.report(slot_path,
                           "dead slot with pending scoreboard registers");
            if (loads[s] != 0)
                rep.report(slot_path, "dead slot with outstanding loads");
            continue;
        }
        if (ws.pendingLoads != loads[s])
            rep.report(slot_path,
                       "pendingLoads=" + std::to_string(ws.pendingLoads)
                           + " but " + std::to_string(loads[s])
                           + " LDST ops are outstanding");
        // Every scoreboard-pending register needs a completion source
        // (an in-flight writeback or load), or issue stalls forever.
        for (int reg : ws.pendingRegs)
            if (!covered[s].count(reg))
                rep.report(slot_path,
                           "pending register " + std::to_string(reg)
                               + " has no in-flight writeback or load");
        ws.warp->cflow.checkWellFormed(rep, slot_path + ".cflow");
    }

    l1_.checkInvariants(rep, path + ".l1", deep);
    if (rtCache_)
        rtCache_->checkInvariants(rep, path + ".rtcache", deep);
    rtUnit_.checkInvariants(rep, path + ".rtunit", now);
}

std::uint64_t
SmCore::stateDigest() const
{
    check::Digest d;
    for (const WarpSlot &ws : warps_) {
        d.mix(ws.warp != nullptr);
        if (!ws.warp)
            continue;
        d.mix(ws.warpId);
        d.mix(ws.pendingLoads);
        d.mix(ws.nextSplit);
        d.mix(ws.dispatchedAt);
        for (int reg : ws.pendingRegs)
            d.mix(static_cast<std::uint64_t>(reg));
        d.mix(ws.pendingRegs.size());
        d.mix(ws.warp->cflow.stateDigest());
    }
    d.mix(warps_.size());
    for (const L1Req &r : l1Queue_) {
        d.mix(r.sector);
        d.mix(r.write);
        d.mix(static_cast<std::uint64_t>(r.origin));
        d.mix(r.tag);
    }
    d.mix(l1Queue_.size());
    // ldstOps_ (hash map) and writebacks_ (swap-removed vector) have
    // history-dependent iteration order: fold order-insensitively.
    std::uint64_t fold = 0;
    for (const auto &[tag, op] : ldstOps_) {
        check::Digest e;
        e.mix(tag);
        e.mix(op.slot);
        e.mix(static_cast<std::uint64_t>(op.dstReg));
        e.mix(op.sectorsLeft);
        fold ^= e.value();
    }
    d.mix(fold);
    d.mix(ldstOps_.size());
    fold = 0;
    for (const PendingWriteback &wb : writebacks_) {
        check::Digest e;
        e.mix(wb.at);
        e.mix(wb.slot);
        e.mix(static_cast<std::uint64_t>(wb.reg));
        e.mix(wb.isLoad);
        fold ^= e.value();
    }
    d.mix(fold);
    d.mix(writebacks_.size());
    // The tag heap pops in a deterministic order: drain a copy.
    auto heap = tagReady_;
    while (!heap.empty()) {
        d.mix(heap.top().at);
        d.mix(heap.top().seq);
        d.mix(heap.top().tag);
        heap.pop();
    }
    d.mix(tagSeq_);
    d.mix(nextLdstTag_);
    d.mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(greedyWarp_)));
    d.mix(rrCursor_);
    d.mix(sfuReadyAt_);
    d.mix(l1_.stateDigest());
    if (rtCache_)
        d.mix(rtCache_->stateDigest());
    d.mix(rtUnit_.stateDigest());
    return d.value();
}

namespace {

void
saveWarp(serial::Writer &w, const vptx::Warp &warp)
{
    w.u32(warp.warpId);
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        const vptx::ThreadState &t = warp.threads[lane];
        const std::uint32_t nregs = warp.regs.laneSize(lane);
        const std::uint64_t *row = warp.regs.row(lane);
        w.u64(nregs);
        for (std::uint32_t i = 0; i < nregs; ++i)
            w.u64(row[i]);
        w.u32(t.windowBase);
        w.u64(t.callStack.size());
        for (const auto &f : t.callStack) {
            w.u32(f.retPc);
            w.u32(f.savedWindow);
        }
        w.u32(t.rtDepth);
        for (int i = 0; i < 3; ++i)
            w.u32(t.launchId[i]);
        w.u32(t.tid);
        w.b(t.exited);
    }
    warp.cflow.saveState(w);
    w.u64(warp.fccRows.size());
    for (const vptx::CoalescedRow &row : warp.fccRows) {
        w.i32(row.shaderId);
        w.u32(row.mask);
        for (std::uint16_t e : row.entryIdx)
            w.u32(e);
    }
    // pendingTraverses is a hash map: write sorted by split id.
    std::vector<int> splits;
    splits.reserve(warp.pendingTraverses.size());
    for (const auto &[id, st] : warp.pendingTraverses)
        splits.push_back(id);
    std::sort(splits.begin(), splits.end());
    w.u64(splits.size());
    for (int id : splits) {
        const vptx::TraverseState &st = warp.pendingTraverses.at(id);
        w.i32(id);
        w.u32(st.mask);
        // Legacy wire format: a full-width per-lane table.
        w.u64(kWarpSize);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            const RayTraversal *trav = st.ray(lane);
            w.u64(st.frameBase(lane));
            w.b(trav != nullptr);
            if (trav)
                trav->saveState(w);
        }
    }
}

void
loadWarp(serial::Reader &r, vptx::Warp &warp, const GlobalMemory &gmem)
{
    warp.warpId = r.u32();
    for (unsigned lane = 0; lane < kWarpSize; ++lane) {
        vptx::ThreadState &t = warp.threads[lane];
        t.rf = &warp.regs;
        t.lane = static_cast<std::uint8_t>(lane);
        const auto nregs = static_cast<std::uint32_t>(r.u64());
        warp.regs.setLaneSize(lane, nregs);
        std::uint64_t *row = warp.regs.row(lane);
        for (std::uint32_t i = 0; i < nregs; ++i)
            row[i] = r.u64();
        t.windowBase = r.u32();
        t.callStack.resize(r.u64());
        for (auto &f : t.callStack) {
            f.retPc = r.u32();
            f.savedWindow = r.u32();
        }
        t.rtDepth = r.u32();
        for (int i = 0; i < 3; ++i)
            t.launchId[i] = r.u32();
        t.tid = r.u32();
        t.exited = r.b();
    }
    warp.cflow.loadState(r);
    warp.fccRows.resize(r.u64());
    for (vptx::CoalescedRow &row : warp.fccRows) {
        row.shaderId = r.i32();
        row.mask = r.u32();
        for (std::uint16_t &e : row.entryIdx)
            e = static_cast<std::uint16_t>(r.u32());
    }
    warp.pendingTraverses.clear();
    std::uint64_t num_splits = r.u64();
    for (std::uint64_t i = 0; i < num_splits; ++i) {
        int id = r.i32();
        vptx::TraverseState &st = warp.pendingTraverses[id];
        const vptx::Mask mask = r.u32();
        st.reset(mask);
        const std::uint64_t num_lanes = r.u64();
        vksim_assert(num_lanes == kWarpSize);
        for (unsigned lane = 0; lane < kWarpSize; ++lane) {
            Addr fb = r.u64();
            if (r.b())
                st.addRay(lane, fb, RayTraversal(gmem, r));
            else
                st.setFrameBase(lane, fb);
        }
    }
}

} // namespace

void
SmCore::saveState(serial::Writer &w) const
{
    vksim_assert(stagedRequests_.empty());
    w.u64(warps_.size());
    for (const WarpSlot &ws : warps_) {
        w.b(ws.warp != nullptr);
        if (!ws.warp)
            continue;
        w.u32(ws.warpId);
        w.u32(ws.pendingLoads);
        w.u32(ws.nextSplit);
        w.u64(ws.dispatchedAt);
        w.u64(ws.pendingRegs.size());
        for (int reg : ws.pendingRegs)
            w.i32(reg);
        saveWarp(w, *ws.warp);
    }
    w.u64(l1Queue_.size());
    for (const L1Req &q : l1Queue_) {
        w.u64(q.sector);
        w.b(q.write);
        w.u8(static_cast<std::uint8_t>(q.origin));
        w.u64(q.tag);
    }
    // ldstOps_ is a hash map: write sorted by tag.
    std::vector<std::uint64_t> tags;
    tags.reserve(ldstOps_.size());
    for (const auto &[tag, op] : ldstOps_)
        tags.push_back(tag);
    std::sort(tags.begin(), tags.end());
    w.u64(tags.size());
    for (std::uint64_t tag : tags) {
        const LdstOp &op = ldstOps_.at(tag);
        w.u64(tag);
        w.u32(op.slot);
        w.i32(op.dstReg);
        w.u32(op.sectorsLeft);
    }
    w.u64(nextLdstTag_);
    // writebacks_ uses swap-remove, so its container order is behavior-
    // relevant (the retire scan walks it front to back): write verbatim.
    w.u64(writebacks_.size());
    for (const PendingWriteback &wb : writebacks_) {
        w.u64(wb.at);
        w.u32(wb.slot);
        w.i32(wb.reg);
        w.b(wb.isLoad);
    }
    // The tag heap pops in a deterministic order: drain a copy.
    auto heap = tagReady_;
    w.u64(heap.size());
    while (!heap.empty()) {
        w.u64(heap.top().at);
        w.u64(heap.top().seq);
        w.u64(heap.top().tag);
        heap.pop();
    }
    w.u64(tagSeq_);
    w.i32(greedyWarp_);
    w.u32(rrCursor_);
    w.u64(sfuReadyAt_);
    w.u64(now_);
    stats_.saveState(w);
    rtStats_.saveState(w);
    rtLatency_.saveState(w);
    l1_.saveState(w);
    if (rtCache_)
        rtCache_->saveState(w);
    auto slot_of = [this](const vptx::Warp *warp) -> std::uint32_t {
        for (std::uint32_t s = 0; s < warps_.size(); ++s)
            if (warps_[s].warp.get() == warp)
                return s;
        vksim_panic("RT unit holds a warp not resident in any slot");
        return 0;
    };
    rtUnit_.saveState(w, slot_of);
}

void
SmCore::loadState(serial::Reader &r)
{
    vksim_assert(stagedRequests_.empty());
    std::uint64_t num_slots = r.u64();
    warps_.clear();
    warps_.resize(num_slots);
    for (WarpSlot &ws : warps_) {
        if (!r.b())
            continue;
        ws.warpId = r.u32();
        ws.pendingLoads = r.u32();
        ws.nextSplit = r.u32();
        ws.dispatchedAt = r.u64();
        std::uint64_t num_regs = r.u64();
        for (std::uint64_t i = 0; i < num_regs; ++i)
            ws.pendingRegs.insert(r.i32());
        ws.warp = std::make_unique<vptx::Warp>();
        loadWarp(r, *ws.warp, *ctx_.gmem);
    }
    l1Queue_.clear();
    std::uint64_t num_l1 = r.u64();
    for (std::uint64_t i = 0; i < num_l1; ++i) {
        L1Req q;
        q.sector = r.u64();
        q.write = r.b();
        q.origin = static_cast<AccessOrigin>(r.u8());
        q.tag = r.u64();
        l1Queue_.push_back(q);
    }
    ldstOps_.clear();
    std::uint64_t num_ops = r.u64();
    for (std::uint64_t i = 0; i < num_ops; ++i) {
        std::uint64_t tag = r.u64();
        LdstOp op;
        op.slot = r.u32();
        op.dstReg = r.i32();
        op.sectorsLeft = r.u32();
        ldstOps_.emplace(tag, op);
    }
    nextLdstTag_ = r.u64();
    writebacks_.clear();
    std::uint64_t num_wb = r.u64();
    for (std::uint64_t i = 0; i < num_wb; ++i) {
        PendingWriteback wb;
        wb.at = r.u64();
        wb.slot = r.u32();
        wb.reg = r.i32();
        wb.isLoad = r.b();
        writebacks_.push_back(wb);
    }
    tagReady_ = {};
    std::uint64_t num_tags = r.u64();
    for (std::uint64_t i = 0; i < num_tags; ++i) {
        TagEvent ev;
        ev.at = r.u64();
        ev.seq = r.u64();
        ev.tag = r.u64();
        tagReady_.push(ev);
    }
    tagSeq_ = r.u64();
    greedyWarp_ = r.i32();
    rrCursor_ = r.u32();
    sfuReadyAt_ = r.u64();
    now_ = r.u64();
    stats_.loadState(r);
    rtStats_.loadState(r);
    rtLatency_.loadState(r);
    l1_.loadState(r);
    if (rtCache_)
        rtCache_->loadState(r);
    rtUnit_.loadState(r, [this](std::uint32_t slot) {
        vksim_assert(slot < warps_.size() && warps_[slot].warp);
        return warps_[slot].warp.get();
    });
}

// --- GpuSimulator -----------------------------------------------------------

GpuSimulator::GpuSimulator(const GpuConfig &config,
                           const vptx::LaunchContext &ctx)
    : config_(config), ctx_(ctx)
{
}

RunResult
GpuSimulator::run()
{
    const auto host_start = std::chrono::steady_clock::now();

    RunResult result;
    result.rtWarpLatency =
        Histogram(kRtLatencyBucketWidth, kRtLatencyBuckets);

    MemFabric fabric(config_.fabric, config_.numSms);
    std::vector<std::unique_ptr<SmCore>> sms;
    for (unsigned s = 0; s < config_.numSms; ++s)
        sms.push_back(std::make_unique<SmCore>(s, config_, ctx_, &fabric));

    // Timeline sink: one single-writer shard per SM plus one for the
    // shared fabric (written only at the cycle barrier), merged in shard
    // order at the end — deterministic for any thread count.
    std::unique_ptr<Timeline> timeline;
    if (config_.timeline.enabled()) {
        timeline = std::make_unique<Timeline>(config_.timeline,
                                              config_.numSms + 1);
        for (unsigned s = 0; s < config_.numSms; ++s) {
            timeline->setProcessName(s, "sm" + std::to_string(s));
            sms[s]->setTimeline(timeline->shard(s));
        }
        timeline->setProcessName(config_.numSms, "fabric");
        fabric.setTimeline(timeline->shard(config_.numSms));
    }

    // Parallel engine: SM cores cycle concurrently on a worker pool, with
    // all SM→fabric traffic staged per SM and drained in fixed SM order
    // at the cycle barrier, so results are bit-identical for any thread
    // count (DESIGN.md, "Parallel engine & determinism contract").
    // threads == 1 is the serial escape hatch.
    const unsigned threads = std::min<unsigned>(
        ThreadPool::resolveThreadCount(config_.threads),
        std::max(1u, config_.numSms));
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<ThreadPool>(threads);
    result.threadsUsed = threads;

    const std::uint32_t total_warps =
        (ctx_.totalThreads() + kWarpSize - 1) / kWarpSize;
    std::uint32_t next_warp = 0;
    unsigned rr_sm = 0;

    // Idle-skip active set (DESIGN.md, "Stepping contract"): quiescent
    // SMs sleep, wake on dispatch or response delivery, and have their
    // skipped spans replayed in bulk — bit-identical either way.
    EngineScheduler sched(sms, config_.idleSkip);

    // Self-validation and differential-harness plumbing. Invariants are
    // swept at the cycle barrier, where no SM worker is running and all
    // cross-unit bookkeeping must balance; a violation panics with its
    // path and cycle. Digests are likewise collected at the barrier so
    // they are bit-identical for any thread count.
    const check::CheckLevel level = config_.checkLevel;
    check::Reporter checker;
    const bool digests_on = config_.digestTrace;
    if (digests_on) {
        result.digests.period = std::max<Cycle>(1, config_.digestPeriod);
        result.digests.units = config_.numSms + 1;
    }
    // A unit is swept only while awake: a sleeping SM's state (hence its
    // invariants) is frozen by construction, and a fabric that just took
    // a provably event-free cycle likewise cannot have broken anything a
    // shallow sweep would catch. Deferred units are re-covered on wake
    // and by the final deep sweep. The probe instrumentation lets tests
    // observe the deferral (see GpuConfig::sweepProbeCycle).
    auto probe_unit = [&](unsigned unit, Cycle cycle) {
        if (result.sweepProbeHitCycle == ~Cycle(0)
            && unit == config_.sweepProbeUnit
            && cycle >= config_.sweepProbeCycle)
            result.sweepProbeHitCycle = cycle;
    };
    auto sweep = [&](Cycle cycle, bool deep, bool fabric_quiet) {
        checker.setCycle(cycle);
        for (unsigned s = 0; s < config_.numSms; ++s) {
            if (sched.asleep(s)) {
                ++result.sweepUnitSkips;
                continue;
            }
            sms[s]->checkInvariants(checker, cycle, deep);
            ++result.sweepUnitChecks;
            probe_unit(s, cycle);
        }
        if (fabric_quiet && !deep) {
            ++result.sweepUnitSkips;
        } else {
            fabric.checkInvariants(checker, deep);
            ++result.sweepUnitChecks;
            probe_unit(config_.numSms, cycle);
        }
    };
    auto collect_digests = [&](Cycle cycle) {
        for (unsigned u = 0; u <= config_.numSms; ++u) {
            std::uint64_t dg = u < config_.numSms
                                   ? sched.digest(u)
                                   : fabric.stateDigest(cycle);
            if (cycle == config_.digestInjectCycle
                && u == config_.digestInjectUnit)
                dg ^= 1; // fault injection: perturb only the trace
            result.digests.values.push_back(dg);
        }
    };

    // Effective epoch length (DESIGN.md, "Stepping contract"): the
    // requested epoch is clamped to the architectural skew bound — the
    // minimum fabric response latency. Both response paths (L2 hit and
    // DRAM fill) go through MemFabric::respond() with the L2 hit
    // latency added, then the interconnect latency, so a response the
    // fabric produces at cycle c becomes deliverable no earlier than
    // c + l2.latency + icntLatency. An epoch no longer than that bound
    // can never produce a response inside the span the SMs have already
    // run, which is what makes epoch stepping bit-identical to the
    // lock-step oracle. Full-level checking sweeps shallow invariants
    // at every cycle barrier — a barrier only lock-step has.
    const Cycle skew_bound = std::max<Cycle>(
        1, config_.fabric.l2.latency + config_.fabric.icntLatency);
    Cycle epoch_len =
        std::min<Cycle>(std::max(1u, config_.epochCycles), skew_bound);
    if (level == check::CheckLevel::Full)
        epoch_len = 1;
    result.epochCyclesUsed = static_cast<unsigned>(epoch_len);

    // Warp dispatch, shared by both engines: round robin over SMs with
    // free slots. A sleeping SM is woken *before* the dispatch attempt
    // so its skipped span replays against the still-frozen state.
    auto dispatch_warps = [&](Cycle cycle) {
        for (unsigned attempt = 0;
             attempt < config_.numSms && next_warp < total_warps;
             ++attempt) {
            unsigned s = (rr_sm + attempt) % config_.numSms;
            if (sched.asleep(s))
                sched.wake(s, cycle);
            if (sms[s]->tryAddWarp(next_warp, cycle)) {
                ++next_warp;
                rr_sm = s + 1;
            }
        }
    };
    auto watchdog = [&](Cycle cycle) {
        if (cycle >= config_.maxCycles)
            throw SimError(
                "GPU simulation exceeded the cycle watchdog ("
                    + std::to_string(config_.maxCycles)
                    + " cycles): the workload is runaway or the "
                      "configuration cannot drain; raise maxCycles if "
                      "the run is legitimately this long",
                cycle);
    };

    // Checkpoint plumbing (DESIGN.md, "Persistence & recovery
    // contract"). Snapshots are captured only here, at the loop top of
    // either engine: the staged SM→fabric queues are empty, the fabric
    // has cycled through now - 1, and dispatch for `now` has not run —
    // exactly the state the per-barrier digests certify. The config
    // digest covers only structural fields, so a snapshot moves freely
    // across thread counts, idle-skip settings, and epoch lengths.
    const CheckpointConfig &ckpt = config_.checkpoint;
    const std::uint64_t cfg_digest = gpuConfigDigest(config_);
    bool oneshot_pending = ckpt.snapshotAt != ~Cycle(0);
    Cycle next_auto_ckpt = ckpt.every ? ckpt.every : ~Cycle(0);
    auto capture = [&](Cycle at) {
        serial::Writer w;
        w.u64(ctx_.gmem->brk());
        const auto pages = ctx_.gmem->snapshotPages();
        w.u64(pages.size());
        for (const auto &[pg, data] : pages) {
            w.u64(pg);
            w.u64(data->size());
            w.bytes(data->data(), data->size());
        }
        w.u32(next_warp);
        w.u32(rr_sm);
        sched.saveState(w);
        for (const auto &sm : sms)
            sm->saveState(w);
        fabric.saveState(w);
        w.u64(result.occupancyTrace.size());
        for (const auto &[c, rays] : result.occupancyTrace) {
            w.u64(c);
            w.u32(rays);
        }
        auto snap = std::make_shared<EngineSnapshot>();
        snap->cycle = at;
        snap->configDigest = cfg_digest;
        snap->bytes = w.take();
        return snap;
    };
    auto maybe_snapshot = [&](Cycle at) {
        if (oneshot_pending && at >= ckpt.snapshotAt) {
            if (ckpt.exact && at != ckpt.snapshotAt)
                throw SimError(
                    "exact snapshot cycle "
                        + std::to_string(ckpt.snapshotAt)
                        + " is not an epoch barrier of this engine "
                          "(nearest barrier: cycle " + std::to_string(at)
                        + "): snapshots are only defined at barriers — "
                          "run with epochCycles=1 or drop the exact "
                          "requirement",
                    at);
            result.snapshot = capture(at);
            oneshot_pending = false;
        }
        if (ckpt.every && at >= next_auto_ckpt) {
            writeSnapshotFile(ckpt.path, *capture(at));
            next_auto_ckpt = (at / ckpt.every + 1) * ckpt.every;
        }
    };

    Cycle now = 0;
    if (ckpt.resume) {
        const EngineSnapshot &snap = *ckpt.resume;
        if (snap.configDigest != cfg_digest)
            throw SimError(
                "engine snapshot was captured under a different "
                "structural GPU configuration (config digest mismatch): "
                "restore with the same SM/cache/DRAM/RT geometry the "
                "snapshot was taken under");
        serial::Reader r(snap.bytes);
        // The snapshot's page set is a superset of the freshly built
        // image (pages only materialize, never vanish), so overwriting
        // page by page reproduces the exact memory state.
        const Addr brk = r.u64();
        const std::uint64_t num_pages = r.u64();
        std::vector<std::uint8_t> page;
        for (std::uint64_t i = 0; i < num_pages; ++i) {
            const Addr pg = r.u64();
            page.resize(r.u64());
            r.bytes(page.data(), page.size());
            ctx_.gmem->write(pg << GlobalMemory::kPageBits, page.data(),
                             page.size());
        }
        ctx_.gmem->setBrk(brk);
        next_warp = r.u32();
        rr_sm = r.u32();
        sched.loadState(r);
        for (const auto &sm : sms)
            sm->loadState(r);
        fabric.loadState(r);
        const std::uint64_t num_occ = r.u64();
        result.occupancyTrace.reserve(num_occ);
        for (std::uint64_t i = 0; i < num_occ; ++i) {
            const Cycle c = r.u64();
            const unsigned rays = r.u32();
            result.occupancyTrace.emplace_back(c, rays);
        }
        vksim_assert(r.done());
        now = snap.cycle;
        // The resumed trace's first sample is the first period multiple
        // the loop will reach; record it so start-aligned comparison
        // against an uninterrupted oracle lines up.
        if (digests_on)
            result.digests.start = ((now + result.digests.period - 1)
                                    / result.digests.period)
                                   * result.digests.period;
    }

    if (epoch_len == 1) {
        // --- Lock-step oracle: one barrier per cycle -------------------
        while (true) {
            maybe_snapshot(now);
            dispatch_warps(now);

            const std::vector<unsigned> &active = sched.active();
            if (pool && active.size() > 1)
                pool->parallelFor(active.size(), [&](std::size_t i) {
                    sms[active[i]]->cycle(now);
                });
            else
                for (unsigned s : active)
                    sms[s]->cycle(now);

            // Cycle barrier: drain staged SM traffic in fixed
            // (ascending) SM order — sleeping SMs stage nothing — then
            // advance the shared fabric. When every SM sleeps, the
            // fabric may take the counter-only fast path through a
            // provably event-free cycle.
            for (unsigned s : active)
                sms[s]->flushStagedRequests(now);

            const bool fabric_quiet =
                sched.allAsleep() && fabric.quiescentCycle(now);
            if (!fabric_quiet)
                fabric.cycle(now);

            // Deliverable response for a sleeping SM → wake it for the
            // next cycle. Unreachable under the current sleep gate
            // (sleeping SMs have no outstanding reads), but early wakes
            // are always correct, so this stays as the safety net the
            // wake-condition contract promises.
            if (sched.enabled())
                for (unsigned s = 0; s < config_.numSms; ++s)
                    if (sched.asleep(s) && fabric.hasResponse(s))
                        sched.wake(s, now + 1);

            if (level != check::CheckLevel::Off) {
                bool deep = now % check::kBasicSweepPeriod == 0;
                if (level == check::CheckLevel::Full || deep)
                    sweep(now, deep, fabric_quiet);
            }
            if (digests_on && now % result.digests.period == 0)
                collect_digests(now);

            if (config_.occupancySamplePeriod
                && now % config_.occupancySamplePeriod == 0) {
                unsigned rays = 0;
                for (auto &sm : sms)
                    rays += sm->rtUnit().activeRays();
                result.occupancyTrace.emplace_back(now, rays);
            }

            ++now;
            watchdog(now);

            if (next_warp >= total_warps) {
                bool all_idle = fabric.idle();
                for (unsigned s = 0; s < config_.numSms && all_idle; ++s)
                    all_idle = sched.asleep(s) || sms[s]->idle();
                if (all_idle)
                    break;
            }

            // Sleep transitions happen last: an SM that just went
            // quiescent has executed cycle(now); the first cycle it
            // skips is now + 1.
            sched.reconcile(now);
        }
    } else {
        // --- Epoch-stepped engine --------------------------------------
        // Workers advance each active SM through the whole span
        // [now, epoch_end) between barriers. During the span an SM
        // touches the shared fabric only to drain its own response
        // queue — which the fabric, idle between barriers, cannot grow
        // — and stages all outbound traffic per cycle. The barrier then
        // replays the fabric through the same span, injecting each
        // cycle's staged requests in ascending SM order first: the
        // exact injection sequence the lock-step barrier produces. The
        // epoch clamp above guarantees no replayed cycle creates a
        // response an SM should already have drained.
        const Cycle occ_period = config_.occupancySamplePeriod;
        const Cycle dig_period = digests_on ? result.digests.period : 0;
        const unsigned units = config_.numSms + 1;

        // parked[s]: first cycle of the span the worker did NOT execute
        // (== epoch end when the SM ran the whole span). A worker parks
        // as soon as sleepable() holds — the same predicate, at the
        // same point in the cycle stream, that reconcile() applies at a
        // lock-step barrier.
        std::vector<Cycle> parked(config_.numSms, 0);
        std::vector<unsigned> occ_scratch;

        while (true) {
            maybe_snapshot(now);
            dispatch_warps(now);

            // Epoch span: one cycle while dispatch is in progress (the
            // round robin must observe per-cycle occupancy), the full
            // epoch after. Basic-level sweeps only fire at
            // kBasicSweepPeriod multiples; chop the span so such a
            // cycle is always its epoch's *last* — the one cycle at
            // which every SM's live state is barrier-synchronized.
            const Cycle e_start = now;
            Cycle epoch_end =
                e_start + (next_warp < total_warps ? 1 : epoch_len);
            if (level == check::CheckLevel::Basic) {
                const Cycle p = check::kBasicSweepPeriod;
                Cycle next_sweep = ((e_start + p - 1) / p) * p;
                epoch_end = std::min(epoch_end, next_sweep + 1);
            }

            // Preallocate this epoch's digest samples (sample-major,
            // matching the lock-step trace layout). Workers fill their
            // own SM's slots for the cycles they execute plus the
            // frozen tail after parking; sleeping SMs' columns and the
            // fabric column are filled serially at the barrier.
            const std::size_t dig_base = result.digests.values.size();
            Cycle dig_first = 0;
            if (dig_period) {
                dig_first =
                    ((e_start + dig_period - 1) / dig_period) * dig_period;
                std::size_t count =
                    dig_first < epoch_end
                        ? (epoch_end - 1 - dig_first) / dig_period + 1
                        : 0;
                result.digests.values.resize(dig_base + count * units);
            }
            Cycle occ_first = 0;
            if (occ_period) {
                occ_first =
                    ((e_start + occ_period - 1) / occ_period) * occ_period;
                std::size_t count =
                    occ_first < epoch_end
                        ? (epoch_end - 1 - occ_first) / occ_period + 1
                        : 0;
                occ_scratch.assign(count * config_.numSms, 0);
            }
            auto digest_at = [&](Cycle c, unsigned unit, std::uint64_t dg) {
                if (c == config_.digestInjectCycle
                    && unit == config_.digestInjectUnit)
                    dg ^= 1; // fault injection: perturb only the trace
                std::size_t sample = (c - dig_first) / dig_period;
                result.digests.values[dig_base + sample * units + unit] =
                    dg;
            };
            auto occ_at = [&](Cycle c, unsigned sm, unsigned rays) {
                std::size_t sample = (c - occ_first) / occ_period;
                occ_scratch[sample * config_.numSms + sm] = rays;
            };

            // Fork: each lane runs one SM over the span, touching only
            // that SM and its disjoint sample slots.
            const std::vector<unsigned> active = sched.active();
            auto run_sm = [&](unsigned s) {
                SmCore &sm = *sms[s];
                Cycle c = e_start;
                for (; c < epoch_end && !sm.sleepable(); ++c) {
                    sm.cycle(c);
                    if (dig_period && c % dig_period == 0)
                        digest_at(c, s, sm.stateDigest());
                    if (occ_period && c % occ_period == 0)
                        occ_at(c, s, sm.rtUnit().activeRays());
                }
                // parked[s] <= epoch_end: first span cycle not executed
                // because the SM went sleepable there. The sentinel
                // epoch_end + 1 means the SM ran the whole span and is
                // NOT sleepable at its end — it must block termination
                // and stay active, exactly like an SM that lock-step's
                // reconcile() would keep awake.
                parked[s] =
                    c == epoch_end && !sm.sleepable() ? epoch_end + 1 : c;
                if (c == epoch_end)
                    return;
                // Frozen tail: a parked SM's architectural state (hence
                // its digest and ray occupancy) cannot change for the
                // rest of the span.
                if (dig_period) {
                    std::uint64_t frozen = sm.stateDigest();
                    for (Cycle t =
                             ((c + dig_period - 1) / dig_period)
                             * dig_period;
                         t < epoch_end; t += dig_period)
                        digest_at(t, s, frozen);
                }
                if (occ_period) {
                    unsigned rays = sm.rtUnit().activeRays();
                    for (Cycle t =
                             ((c + occ_period - 1) / occ_period)
                             * occ_period;
                         t < epoch_end; t += occ_period)
                        occ_at(t, s, rays);
                }
            };
            if (pool && active.size() > 1)
                pool->parallelFor(active.size(), [&](std::size_t i) {
                    run_sm(active[i]);
                });
            else
                for (unsigned s : active)
                    run_sm(s);

            // Barrier: replay the fabric through the span. A cycle may
            // take the counter-only fast path only if no SM executed it
            // and no traffic lands in it — the epoch-mode equivalent of
            // the lock-step all-asleep gate.
            bool terminated = false;
            for (Cycle c = e_start; c < epoch_end; ++c) {
                bool injected = false;
                for (unsigned s : active)
                    injected = sms[s]->flushStagedCycle(c) || injected;

                bool no_sm_ran = true;
                for (unsigned s : active)
                    no_sm_ran = no_sm_ran && parked[s] <= c;
                if (injected || !no_sm_ran || !fabric.quiescentCycle(c))
                    fabric.cycle(c);

                if (dig_period && c % dig_period == 0)
                    digest_at(c, config_.numSms, fabric.stateDigest(c));

                watchdog(c + 1);

                // Termination, to the exact lock-step cycle: the run
                // ends at c + 1 when the fabric drained and every SM is
                // asleep or parked by then. An unparked SM still had
                // work at c + 1 (it was not sleepable there), so
                // lock-step would not have stopped either.
                if (next_warp >= total_warps && fabric.idle()) {
                    bool all_done = true;
                    for (unsigned s : active)
                        all_done = all_done && parked[s] <= c + 1;
                    if (all_done) {
                        now = c + 1;
                        terminated = true;
                        break;
                    }
                }
            }
            if (!terminated)
                now = epoch_end;

            // Drop preallocated samples past the committed span (early
            // termination only), then fill the sleeping SMs' frozen
            // columns for the samples that remain.
            if (dig_period) {
                std::size_t kept =
                    dig_first < now
                        ? (now - 1 - dig_first) / dig_period + 1
                        : 0;
                result.digests.values.resize(dig_base + kept * units);
                for (unsigned s = 0; s < config_.numSms; ++s) {
                    if (!sched.asleep(s))
                        continue;
                    std::uint64_t dg = sched.digest(s);
                    for (Cycle t = dig_first; t < now; t += dig_period)
                        digest_at(t, s, dg);
                }
            }
            if (occ_period) {
                for (Cycle t = occ_first; t < now; t += occ_period) {
                    std::size_t sample = (t - occ_first) / occ_period;
                    unsigned rays = 0;
                    for (unsigned s = 0; s < config_.numSms; ++s)
                        rays += sched.asleep(s)
                                    ? sms[s]->rtUnit().activeRays()
                                    : occ_scratch[sample * config_.numSms
                                                  + s];
                    result.occupancyTrace.emplace_back(t, rays);
                }
            }

            for (unsigned s : active)
                sms[s]->clearStaged();

            // Mid-epoch parks become sleeps: with idle-skip on the
            // scheduler takes over the parked span (replayed at wake,
            // counted as skipped); with it off the heartbeat replay
            // happens here and the SM stays active — exactly what a
            // lock-step engine cycling a quiescent core records.
            for (unsigned s : active) {
                if (parked[s] >= now)
                    continue;
                if (sched.enabled())
                    sched.sleepAt(s, parked[s]);
                else
                    sms[s]->catchUpIdleCycles(parked[s], now);
            }

            // Response-wake safety net, as in lock-step (unreachable by
            // construction: a sleepable SM has no outstanding reads).
            if (sched.enabled())
                for (unsigned s = 0; s < config_.numSms; ++s)
                    if (sched.asleep(s) && fabric.hasResponse(s))
                        sched.wake(s, now);

            // Basic-level sweep at the chopped boundary: the last
            // committed cycle is the only one of the span at which
            // every SM's live state equals its lock-step barrier state.
            if (level == check::CheckLevel::Basic
                && (now - 1) % check::kBasicSweepPeriod == 0)
                sweep(now - 1, true, false);

            if (terminated)
                break;
            sched.reconcile(now);
        }
    }

    // A one-shot snapshot request past the end of the run is a caller
    // error, not a silent no-op: the returned RunResult would otherwise
    // carry a null snapshot the caller has no way to distinguish from
    // "forgot to ask".
    if (oneshot_pending)
        throw SimError("snapshot cycle " + std::to_string(ckpt.snapshotAt)
                           + " was never reached at a barrier: the run "
                             "ended at cycle " + std::to_string(now)
                           + " — request a snapshot inside the run's "
                             "cycle span",
                       now);

    // Replay still-sleeping SMs to the end of the run, then the final
    // deep sweep covers the fully caught-up machine.
    sched.finish(now);
    result.smCyclesSkipped = sched.skippedSmCycles();

    // Final deep sweep: the drained machine must balance exactly.
    if (level != check::CheckLevel::Off)
        sweep(now, true, false);

    result.cycles = now;

    // Aggregate per-SM statistics in fixed SM order (determinism: the
    // merge order never depends on the thread count).
    auto merge = [](StatGroup &dst, const StatGroup &src) {
        for (const auto &[name, counter] : src.counters())
            dst.counter(name).inc(counter.value());
    };
    for (auto &sm : sms) {
        merge(result.core, sm->stats());
        merge(result.rt, sm->rtStats());
        result.rtWarpLatency.merge(sm->rtLatency());
        merge(result.l1, sm->l1().stats());
        if (sm->rtCache())
            merge(result.l1, sm->rtCache()->stats());
        result.uopDecodes += sm->uopDecodes();
    }
    merge(result.dram, fabric.dramStats());
    for (unsigned p = 0; p < fabric.numPartitions(); ++p)
        merge(result.l2, fabric.l2Stats(p));

    // Unified metrics registry: fold every per-SM shard in fixed SM
    // order (full fidelity — counters *and* accumulators), then the
    // shared fabric, then derived ratios. Host wall-clock and thread
    // count are deliberately excluded so the dump is bit-identical for
    // every thread count.
    MetricsRegistry &m = result.metrics;
    for (auto &sm : sms) {
        m.importGroup("gpu.core", sm->stats());
        m.importGroup("gpu.rt", sm->rtStats());
        m.importGroup("gpu.l1", sm->l1().stats());
        if (sm->rtCache())
            m.importGroup("gpu.rtcache", sm->rtCache()->stats());
        m.histogram("gpu.rt.warp_latency_hist", kRtLatencyBucketWidth,
                    kRtLatencyBuckets)
            .merge(sm->rtLatency());
    }
    m.importGroup("gpu.dram", fabric.dramStats());
    for (unsigned p = 0; p < fabric.numPartitions(); ++p)
        m.importGroup("gpu.l2", fabric.l2Stats(p));
    m.gauge("gpu.cycles").set(static_cast<double>(now));
    m.gauge("gpu.occupancy_samples")
        .set(static_cast<double>(result.occupancyTrace.size()));
    m.gauge("gpu.derived.simt_efficiency").set(result.simtEfficiency());
    m.gauge("gpu.derived.rt_simt_efficiency")
        .set(result.rtSimtEfficiency());
    m.gauge("gpu.derived.dram_utilization").set(result.dramUtilization());
    m.gauge("gpu.derived.dram_efficiency").set(result.dramEfficiency());
    m.gauge("gpu.derived.rt_active_fraction")
        .set(result.rtActiveFraction());
    if (ctx_.gmem) {
        m.gauge("mem.heap_bytes")
            .set(static_cast<double>(ctx_.gmem->brk()));
        m.gauge("mem.resident_bytes")
            .set(static_cast<double>(ctx_.gmem->residentBytes()));
    }
    if (timeline) {
        m.gauge("timeline.events")
            .set(static_cast<double>(timeline->eventCount()));
        m.gauge("timeline.dropped_events")
            .set(static_cast<double>(timeline->droppedCount()));
        std::string err;
        if (!timeline->writeFile(&err))
            warnStr("timeline: " + err);
    }

    result.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now()
                                      - host_start)
            .count();
    if (config_.printPerfSummary)
        std::fprintf(stderr,
                     "[vksim] perf: %.3f s host, %llu sim cycles, "
                     "%.0f cycles/s, %u thread%s, %u-cycle epochs, "
                     "%llu SM-cycles skipped\n",
                     result.hostSeconds,
                     static_cast<unsigned long long>(result.cycles),
                     result.cyclesPerHostSecond(), threads,
                     threads == 1 ? "" : "s", result.epochCyclesUsed,
                     static_cast<unsigned long long>(
                         result.smCyclesSkipped));
    return result;
}

} // namespace vksim
