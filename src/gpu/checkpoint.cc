#include "gpu/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "gpu/gpu.h"
#include "util/serial.h"
#include "util/simerror.h"

namespace vksim {

namespace {

constexpr char kSnapshotMagic[8] = {'V', 'K', 'S', 'I', 'M', 'C', 'K', 'P'};

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
digestCache(serial::Writer &w, const CacheConfig &c)
{
    w.u64(c.sizeBytes);
    w.u32(c.assoc);
    w.u32(c.latency);
    w.u32(c.numMshrs);
    w.u32(c.mshrTargets);
    w.u64(c.lineBytes);
    w.u8(static_cast<std::uint8_t>(c.fillPolicy));
    w.u32(c.streamingThreshold);
}

} // namespace

std::uint64_t
gpuConfigDigest(const GpuConfig &config)
{
    // Serialize the structural fields into a canonical byte stream and
    // hash that: the digest changes exactly when a field that shapes
    // simulated behavior changes.
    serial::Writer w;
    w.u32(config.numSms);
    w.u32(config.maxWarpsPerSm);
    w.u32(config.regsPerSm);
    w.u32(config.issueWidth);
    w.u32(config.aluLatency);
    w.u32(config.sfuLatency);
    w.u32(config.sfuIssueInterval);
    w.u32(config.ldstQueueSize);
    digestCache(w, config.l1);
    w.b(config.useRtCache);
    if (config.useRtCache)
        digestCache(w, config.rtCache);
    w.u32(config.fabric.numPartitions);
    w.u32(config.fabric.icntLatency);
    digestCache(w, config.fabric.l2);
    w.u32(config.fabric.dram.banks);
    w.u64(config.fabric.dram.rowBytes);
    w.u32(config.fabric.dram.tRcd);
    w.u32(config.fabric.dram.tRp);
    w.u32(config.fabric.dram.tCas);
    w.u32(config.fabric.dram.burstCycles);
    w.u32(config.fabric.dram.queueSize);
    w.u32(config.fabric.dram.bankGroups);
    w.u32(config.fabric.dram.tCcdL);
    w.u32(config.fabric.dram.tCcdS);
    w.u32(config.fabric.dram.tRrd);
    w.u32(config.fabric.dram.tRefi);
    w.u32(config.fabric.dram.tRfc);
    w.f64(config.fabric.dramClockRatio);
    w.u8(static_cast<std::uint8_t>(config.fabric.interleave));
    w.b(config.fabric.perfectMem);
    w.u32(config.rt.maxWarps);
    w.u32(config.rt.memQueueSize);
    w.u32(config.rt.issuePerCycle);
    w.u32(config.rt.opsPerCycle);
    w.u32(config.rt.boxLatency);
    w.u32(config.rt.triLatency);
    w.u32(config.rt.transformLatency);
    w.u32(config.rt.shortStackEntries);
    w.b(config.rt.perfectBvh);
    w.b(config.rt.fccEnabled);
    w.b(config.its);
    w.b(config.fccEnabled);
    w.u8(static_cast<std::uint8_t>(config.sched));
    w.u64(config.occupancySamplePeriod);
    return fnv1a(w.buffer().data(), w.buffer().size());
}

void
writeSnapshotFile(const std::string &path, const EngineSnapshot &snap)
{
    serial::Writer w;
    w.bytes(kSnapshotMagic, sizeof(kSnapshotMagic));
    w.u32(kSnapshotVersion);
    w.u64(snap.configDigest);
    w.u64(snap.cycle);
    w.u64(snap.bytes.size());
    w.u64(fnv1a(snap.bytes.data(), snap.bytes.size()));
    w.bytes(snap.bytes.data(), snap.bytes.size());

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw SimError("cannot open snapshot temp file " + tmp
                       + " for writing: check that the directory exists "
                         "and is writable");
    const std::vector<std::uint8_t> &buf = w.buffer();
    bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
    ok = std::fflush(f) == 0 && ok;
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SimError("short write while saving snapshot to " + tmp
                       + ": disk full or I/O error");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SimError("cannot rename snapshot temp file over " + path);
    }
}

EngineSnapshot
readSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw SimError("cannot open snapshot file " + path
                       + ": it does not exist or is unreadable");
    std::vector<std::uint8_t> raw;
    std::uint8_t chunk[65536];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        raw.insert(raw.end(), chunk, chunk + n);
    std::fclose(f);

    serial::Reader r(raw);
    char magic[sizeof(kSnapshotMagic)];
    if (r.remaining() < sizeof(magic))
        throw SimError("snapshot file " + path
                       + " is truncated before the header: re-create the "
                         "checkpoint, this file is unusable");
    r.bytes(magic, sizeof(magic));
    if (std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0)
        throw SimError("snapshot file " + path
                       + " has a bad magic: this is not a vksim engine "
                         "snapshot");
    std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        throw SimError(
            "snapshot file " + path + " has version "
            + std::to_string(version) + " but this build reads version "
            + std::to_string(kSnapshotVersion)
            + ": re-create the checkpoint with the current binary "
              "(snapshot layouts are not cross-version compatible)");

    EngineSnapshot snap;
    snap.configDigest = r.u64();
    snap.cycle = r.u64();
    std::uint64_t payload_size = r.u64();
    std::uint64_t payload_digest = r.u64();
    if (r.remaining() != payload_size)
        throw SimError("snapshot file " + path + " is truncated: header "
                       + "promises " + std::to_string(payload_size)
                       + " payload bytes but " + std::to_string(r.remaining())
                       + " remain; the file was torn mid-write — re-create "
                         "the checkpoint");
    snap.bytes.resize(payload_size);
    r.bytes(snap.bytes.data(), payload_size);
    if (fnv1a(snap.bytes.data(), snap.bytes.size()) != payload_digest)
        throw SimError("snapshot file " + path + " failed payload digest "
                       + "verification: the contents are corrupt — "
                         "re-create the checkpoint");
    return snap;
}

} // namespace vksim
