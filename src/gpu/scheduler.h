/**
 * @file
 * EngineScheduler: the active-set manager behind idle-skip stepping.
 *
 * The engine loop (GpuSimulator::run) used to cycle every SM on every
 * core cycle. The scheduler tracks which SMs are *asleep* — proved
 * quiescent via SmCore::sleepable() — and hands the loop only the
 * active set. A sleeping SM is woken by warp dispatch or by a fabric
 * response addressed to it; at wake (and at end of run) the skipped
 * span is replayed in bulk through SmCore::catchUpIdleCycles(), which
 * reproduces exactly what lock-step cycling of a sleepable SM would
 * have done. The result is bit-identical stats, digests, timelines and
 * images with idle-skip on or off (DESIGN.md, "Stepping contract").
 *
 * The scheduler also memoizes state digests of sleeping SMs: a sleeping
 * SM's digest is frozen by construction, so per-barrier digest traces
 * need not rehash it every sample.
 *
 * Single-threaded: all methods run at the cycle barrier (or in the
 * serial sections around it), never from SM worker threads.
 */

#ifndef VKSIM_GPU_SCHEDULER_H
#define VKSIM_GPU_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/gpu.h"

namespace vksim {

class EngineScheduler
{
  public:
    /**
     * @param sms     The SM cores, owned by the caller; must outlive
     *                the scheduler.
     * @param enabled false = idle-skip off: every SM stays permanently
     *                active and the scheduler degenerates to a no-op.
     */
    EngineScheduler(std::vector<std::unique_ptr<SmCore>> &sms,
                    bool enabled);

    bool enabled() const { return enabled_; }

    /** Awake SM indices, always in ascending order (determinism: the
     *  barrier drains staged traffic in this order). */
    const std::vector<unsigned> &active() const { return active_; }

    bool asleep(unsigned sm) const { return !units_[sm].awake; }
    bool allAsleep() const { return active_.empty(); }

    /**
     * Wake `sm` so that its next cycle() call happens at `resume`:
     * replays the skipped span [sleepSince, resume) in bulk and
     * reinserts the SM into the active set. No-op when already awake.
     * Waking is always *safe* — an unnecessary wake only shrinks the
     * skipped span, never changes results.
     */
    void wake(unsigned sm, Cycle resume);

    /**
     * Move every active SM that is now sleepable() to the sleeping set,
     * with `from` as the first cycle it will skip. Call once per loop
     * iteration, after ++now.
     */
    void reconcile(Cycle from);

    /**
     * Epoch-barrier sleep transfer: an SM worker proved `sm` sleepable
     * before executing cycle `from` and parked it mid-epoch; move it to
     * the sleeping set with that cycle as the first one skipped. The
     * caller vouches that the SM has not been cycled at or past `from`
     * (same semantics reconcile() derives itself for boundary sleeps).
     * No-op when already asleep.
     */
    void sleepAt(unsigned sm, Cycle from);

    /**
     * This SM's barrier digest: live for awake SMs, memoized while
     * asleep (a sleeping SM's architectural state cannot change, and
     * SmCore::stateDigest() deliberately excludes the cycle counter).
     */
    std::uint64_t digest(unsigned sm);

    /** Replay every still-sleeping SM up to `end` (end of run). */
    void finish(Cycle end);

    /** Total SM-cycles skipped instead of simulated (perf telemetry). */
    std::uint64_t skippedSmCycles() const { return skipped_; }

    /**
     * Serialize / restore the sleep set (checkpointing). Memoized
     * digests are a pure cache and are not serialized; loadState
     * invalidates them and rebuilds the active list from the awake
     * flags. `enabled_` is construction-time config, not state.
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct Unit
    {
        bool awake = true;
        Cycle sleepSince = 0;
        std::uint64_t digest = 0;
        bool digestValid = false;
    };

    std::vector<std::unique_ptr<SmCore>> &sms_;
    bool enabled_;
    std::vector<Unit> units_;
    std::vector<unsigned> active_; ///< ascending
    std::uint64_t skipped_ = 0;
};

} // namespace vksim

#endif // VKSIM_GPU_SCHEDULER_H
