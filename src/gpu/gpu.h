/**
 * @file
 * The cycle-level GPU model (paper Fig. 3): SMs with GTO/LRR warp
 * scheduling, a scoreboard, ALU/SFU/LDST pipelines, an L1 data cache
 * (optionally a dedicated RT cache), one RT unit per SM, and the shared
 * memory fabric (L2 partitions + DRAM).
 *
 * Functional execution happens at issue (GPGPU-Sim style) through the
 * shared WarpExecutor; this module models only timing.
 */

#ifndef VKSIM_GPU_GPU_H
#define VKSIM_GPU_GPU_H

#include <deque>
#include <memory>
#include <queue>
#include <set>

#include "check/check.h"
#include "core/clockedunit.h"
#include "dram/fabric.h"
#include "gpu/checkpoint.h"
#include "rtunit/rtunit.h"
#include "util/image.h"
#include "util/metrics.h"
#include "util/timeline.h"
#include "vptx/exec.h"

namespace vksim {

/** Warp scheduling policy. */
enum class SchedPolicy
{
    GTO, ///< greedy-then-oldest (baseline, Table III)
    LRR  ///< loose round robin
};

/** Full GPU configuration (paper Table III). */
struct GpuConfig
{
    unsigned numSms = 30;
    unsigned maxWarpsPerSm = 32;
    unsigned regsPerSm = 65536;
    unsigned issueWidth = 2;    ///< warp instructions issued per SM cycle
    unsigned aluLatency = 4;
    unsigned sfuLatency = 16;
    unsigned sfuIssueInterval = 4; ///< SFU throughput limit
    unsigned ldstQueueSize = 32;

    CacheConfig l1{"l1", 64 * 1024, 0, 20, 64, 16};
    bool useRtCache = false; ///< dedicated RT cache (paper Fig. 15)
    CacheConfig rtCache{"rtcache", 32 * 1024, 0, 20, 64, 16};

    FabricConfig fabric;
    RtUnitConfig rt;

    bool its = false;        ///< independent thread scheduling case study
    bool fccEnabled = false; ///< function call coalescing case study
    SchedPolicy sched = SchedPolicy::GTO;

    double coreClockMhz = 1365.0;
    Cycle maxCycles = 500'000'000; ///< runaway watchdog (throws SimError)

    /**
     * Event-stepped idle skipping (`--no-idle-skip` disables): the
     * engine scheduler puts quiescent SMs to sleep, wakes them on warp
     * dispatch or response delivery, and fast-forwards the memory
     * fabric through provably event-free cycles. Behavior-neutral by
     * contract — stats JSON, digest traces, and images are bit-identical
     * with this on or off (see DESIGN.md, "Stepping contract").
     */
    bool idleSkip = true;

    /**
     * Epoch-stepped parallel engine (`--epoch-cycles`): SM workers
     * advance their cores through multi-cycle epochs between barriers,
     * with all SM→fabric traffic staged per (SM, cycle) and replayed
     * against the fabric in deterministic (cycle, SM) order at the
     * epoch boundary. 1 = classic lock-step (one barrier per cycle, the
     * certification oracle for tools/diffrun).
     *
     * Behavior-neutral by construction: the engine clamps the epoch to
     * the architectural skew bound (the minimum fabric response latency,
     * fabric.l2.latency + fabric.icntLatency), below which no response
     * can become deliverable inside the span an SM has already run, and
     * chops epochs to one cycle while warp dispatch is still in
     * progress (dispatch is a cross-SM round-robin that must see
     * per-cycle occupancy). Stats JSON, digest traces, images and cycle
     * counts are bit-identical for every epochCycles and thread count
     * (DESIGN.md, "Stepping contract").
     */
    unsigned epochCycles = 64;

    /** Occupancy trace sampling period (0 disables; Fig. 18). */
    Cycle occupancySamplePeriod = 0;

    /**
     * Host worker threads for the parallel engine. 0 resolves via
     * VKSIM_THREADS / hardware concurrency; 1 forces the serial engine
     * (the `--serial` escape hatch). Results are bit-identical for every
     * thread count — see DESIGN.md, "Parallel engine & determinism
     * contract".
     */
    unsigned threads = 0;

    /** Print a one-line end-of-run perf summary to stderr. */
    bool printPerfSummary = false;

    /**
     * Self-validation level (`--check=<level>` / VKSIM_CHECK): Basic
     * sweeps cross-layer invariants every check::kBasicSweepPeriod
     * cycles, Full sweeps shallow invariants every cycle (deep scans at
     * the Basic period) and enables the per-ray reference differential.
     * A violation panics with its path and cycle.
     */
    check::CheckLevel checkLevel = check::defaultCheckLevel();

    /**
     * Record per-cycle-barrier state digests of every SM plus the fabric
     * (RunResult::digests) for the differential engine runner
     * (tools/diffrun). Off by default: digesting is cheap but not free.
     */
    bool digestTrace = false;
    Cycle digestPeriod = 1; ///< cycles between digest samples

    /**
     * Fault injection for validating the differential harness itself:
     * XOR a bit into the digest of `digestInjectUnit` at cycle
     * `digestInjectCycle` (default: never). The run is untouched; only
     * its digest trace diverges.
     */
    Cycle digestInjectCycle = ~Cycle(0);
    unsigned digestInjectUnit = 0;

    /**
     * Sweep-probe instrumentation (tests only): record in
     * RunResult::sweepProbeHitCycle the first cycle >= sweepProbeCycle
     * at which unit `sweepProbeUnit` (SM index, or numSms for the
     * fabric) was actually included in an invariant sweep. Lets tests
     * observe that sweeps over sleeping units are deferred to wake /
     * the final sweep rather than silently dropped.
     */
    Cycle sweepProbeCycle = ~Cycle(0);
    unsigned sweepProbeUnit = 0;

    /**
     * Chrome-trace timeline sink (`--timeline=out.json`). Disabled when
     * the path is empty. Events use simulated-cycle timestamps, so the
     * file is bit-identical for every engine thread count.
     */
    TimelineConfig timeline;

    /**
     * Engine checkpoint/restore (auto-snapshot period, one-shot capture,
     * resume source). Snapshots are taken at epoch barriers only; a run
     * resumed from one is bit-identical to the uninterrupted oracle for
     * every thread count, idle-skip setting and epoch length (DESIGN.md,
     * "Persistence & recovery contract"). Mutually exclusive with the
     * timeline sink: a resumed timeline would be missing the pre-snapshot
     * events, so validate() rejects the combination.
     */
    CheckpointConfig checkpoint;

    /**
     * Sanity-check the configuration and return one actionable message
     * per problem (empty = valid): zero-sized structural parameters
     * (SMs, warps, queues, cache geometry) that would deadlock or crash
     * the model, and inconsistent mode combinations (FCC + ITS).
     * SimService::submit() calls this and rejects bad jobs up front;
     * constructing a GpuSimulator directly performs no validation (tests
     * deliberately build degenerate configs).
     */
    std::vector<std::string> validate() const;
};

/** Baseline configuration of Table III. */
GpuConfig baselineGpuConfig();

/** Mobile configuration of Table III (8 SMs, less DRAM bandwidth). */
GpuConfig mobileGpuConfig();

/** Results of a timed run. */
struct RunResult
{
    Cycle cycles = 0;
    StatGroup core{"core"};   ///< issue mix, SIMT efficiency, stalls
    StatGroup rt{"rt"};       ///< aggregated RT-unit statistics
    StatGroup l1{"l1"};       ///< aggregated L1 (+ RT cache) statistics
    StatGroup dram{"dram"};
    StatGroup l2{"l2"};
    Histogram rtWarpLatency;  ///< RT-unit warp latency (Fig. 13)
    std::vector<std::pair<Cycle, unsigned>> occupancyTrace; ///< Fig. 18

    /**
     * The complete observability dump: every subsystem's counters,
     * accumulators and histograms (per-SM shards folded in fixed SM
     * order) plus derived ratio gauges. Deliberately excludes host
     * wall-clock and thread count, so `metrics.toJson()` is byte-
     * identical for every engine thread count (determinism contract).
     */
    MetricsRegistry metrics;

    double hostSeconds = 0.0; ///< wall-clock time of the run() call
    unsigned threadsUsed = 1; ///< engine threads the run executed with

    /**
     * Epoch length the engine actually stepped with after clamping to
     * the skew bound (1 = lock-step). Telemetry like threadsUsed:
     * excluded from `metrics` so the stats dump stays byte-identical
     * across stepping modes.
     */
    unsigned epochCyclesUsed = 1;

    /**
     * Idle-skip engine observability. Deliberately *not* imported into
     * `metrics` (they depend on whether skipping ran, which must not
     * perturb the byte-identical stats dump) — exposed for tests, the
     * perf summary and the benchmarks.
     */
    std::uint64_t smCyclesSkipped = 0;  ///< SM-cycles not simulated
    std::uint64_t sweepUnitChecks = 0;  ///< per-unit invariant sweeps run
    std::uint64_t sweepUnitSkips = 0;   ///< sweeps skipped (unit asleep)

    /**
     * Micro-op fetches across all SM executors. Telemetry like the skip
     * counters above (excluded from `metrics`): the decode-count
     * regression test asserts exactly one decode per issue attempt.
     */
    std::uint64_t uopDecodes = 0;
    Cycle sweepProbeHitCycle = ~Cycle(0); ///< see GpuConfig::sweepProbeCycle

    /** Per-barrier state digests (populated when digestTrace is set). */
    check::DigestTrace digests;

    /**
     * The one-shot engine snapshot requested via
     * GpuConfig::checkpoint.snapshotAt (null when none was requested).
     * Feed it back through CheckpointConfig::resume to continue the run
     * in a fresh engine.
     */
    std::shared_ptr<const EngineSnapshot> snapshot;

    /** Simulated cycles per host second (simulator throughput). */
    double
    cyclesPerHostSecond() const
    {
        return hostSeconds > 0.0
                   ? static_cast<double>(cycles) / hostSeconds
                   : 0.0;
    }

    /** Fraction of issue slots with a full warp (SIMT efficiency). */
    double simtEfficiency() const;
    /** RT-unit SIMT efficiency (active rays / resident ray slots). */
    double rtSimtEfficiency() const;
    /** DRAM utilization and efficiency (Fig. 16 metrics). */
    double dramUtilization() const;
    double dramEfficiency() const;
    /** Fraction of cycles any RT unit was busy. */
    double rtActiveFraction() const;
};

/** RT-warp latency histogram geometry (paper Fig. 13). */
inline constexpr double kRtLatencyBucketWidth = 2000.0;
inline constexpr unsigned kRtLatencyBuckets = 200;

/**
 * One streaming multiprocessor.
 *
 * Thread-safety: cycle() may run concurrently with other SMs' cycle()
 * calls. All SM→fabric traffic is *staged* locally during cycle() and
 * only reaches the shared MemFabric when the owning simulator calls
 * flushStagedRequests() — serially, in fixed SM order, at the cycle
 * barrier. Each SM owns its caches, executor, and statistics (including
 * the RT-unit stats, merged after the run), so cycle() touches no shared
 * mutable state except the simulated GlobalMemory, which is internally
 * synchronized and written at per-thread-disjoint addresses.
 */
class SmCore : public RtMemPort, public ClockedUnit
{
  public:
    SmCore(unsigned sm_id, const GpuConfig &config,
           const vptx::LaunchContext &ctx, MemFabric *fabric);

    /** Admit a warp if occupancy allows at cycle `now`. @return accepted */
    bool tryAddWarp(std::uint32_t warp_id, Cycle now);

    void cycle(Cycle now) override;

    /**
     * Forward the memory requests staged during cycle(now) to the fabric,
     * preserving their issue order. Must be called once per cycle, from a
     * single thread, in ascending SM order (determinism contract).
     */
    void flushStagedRequests(Cycle now);

    /**
     * Epoch-mode drain: inject the requests this SM staged during its
     * cycle(c) call — and only those — preserving issue order. The
     * barrier replays an epoch by calling this for every cycle of the
     * span in ascending (cycle, SM) order, reproducing exactly the
     * injection sequence lock-step flushing would have produced. Must
     * be called with non-decreasing `c` between clearStaged() calls.
     * @return true if any request was injected.
     */
    bool flushStagedCycle(Cycle c);

    /**
     * End-of-epoch reset of the staging queue. Panics if the epoch
     * replay left staged requests behind (every staged request carries
     * a cycle inside the span just replayed, so a leftover means the
     * barrier skipped a cycle).
     */
    void clearStaged();

    /** No resident warps and no in-flight work. */
    bool idle() const override;

    /**
     * Stronger than idle(): cycling this SM would be a pure counter
     * replay (no pending writebacks, RT unit fully quiescent down to
     * its write queue), so the scheduler may put it to sleep. See
     * catchUpIdleCycles() for exactly what such a cycle does.
     */
    bool sleepable() const;

    /**
     * Replay the per-cycle effects of [from, to) sleeping cycles in
     * bulk: the heartbeat counters cycle() unconditionally advances on
     * a sleepable SM (rt.unit_cycles, core.idle_issue_cycles) and any
     * timeline counter samples due in the span, emitted with the
     * frozen (unchanged) values. Bit-identical to calling cycle() for
     * each cycle of the span while sleepable() held.
     */
    void catchUpIdleCycles(Cycle from, Cycle to);

    /** ClockedUnit: nothing self-scheduled while sleepable. */
    Cycle nextEventCycle() const override
    {
        return sleepable() ? kNoPendingEvent : 0;
    }

    /** Currently resident (live) warps. */
    unsigned residentWarps() const;

    unsigned warpLimit() const { return warpLimit_; }

    /**
     * Attach this SM's timeline shard (single-writer: only this SM's
     * worker thread appends). Emits per-warp-slot residency spans,
     * RT-unit traversal spans, and sampled occupancy/MSHR counter
     * tracks.
     */
    void setTimeline(TimelineShard *shard);

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    const StatGroup &rtStats() const { return rtStats_; }
    const Histogram &rtLatency() const { return rtLatency_; }
    Cache &l1() { return l1_; }
    Cache *rtCache() { return rtCache_ ? rtCache_.get() : nullptr; }
    RtUnit &rtUnit() { return rtUnit_; }

    // RtMemPort
    bool rtIssueRead(Addr sector, std::uint64_t tag) override;
    bool rtIssueWrite(Addr sector) override;

    /**
     * Validate this SM's bookkeeping at a cycle barrier (after
     * flushStagedRequests): scoreboard/load accounting, writeback and
     * LDST referential integrity, plus the owned caches, RT unit and
     * each resident warp's SIMT-stack well-formedness.
     */
    void checkInvariants(check::Reporter &rep, Cycle now, bool deep) const;

    /** Order-insensitive digest of all SM-owned architectural state. */
    std::uint64_t stateDigest() const;

    /** Micro-op fetches this SM's executor performed (telemetry). */
    std::uint64_t uopDecodes() const { return executor_.decodeCount(); }

    /**
     * Serialize / restore every piece of SM-owned state the digest walk
     * covers — resident warps (threads, SIMT stacks, parked traverses),
     * scoreboard and LDST bookkeeping, the tag-event heap, the owned
     * caches, the RT unit and all statistics. Only legal at an epoch
     * barrier: the staged-request queue must be empty (asserted).
     */
    void saveState(serial::Writer &w) const;
    void loadState(serial::Reader &r);

  private:
    struct WarpSlot
    {
        std::unique_ptr<vptx::Warp> warp;
        std::set<int> pendingRegs;  ///< scoreboard
        unsigned pendingLoads = 0;  ///< outstanding load instructions
        std::uint32_t warpId = 0;
        unsigned nextSplit = 0;     ///< ITS round robin within the warp
        Cycle dispatchedAt = 0;     ///< admission cycle (timeline span)
    };

    /** Outstanding LDST instruction (load side). */
    struct LdstOp
    {
        unsigned slot;           ///< warp slot
        int dstReg;
        unsigned sectorsLeft;
    };

    struct PendingWriteback
    {
        Cycle at;
        unsigned slot;
        int reg;
        bool isLoad;
    };

    bool tryIssue(Cycle now, std::set<unsigned> &issued_slots);
    bool issueFromWarp(unsigned slot, Cycle now);
    void handleMemInstr(unsigned slot, const vptx::StepResult &res,
                        Cycle now);
    void pumpL1(Cycle now);
    void drainFabric(Cycle now);
    void retireWritebacks(Cycle now);
    void stageRequest(const MemRequest &req);
    void scheduleTag(Cycle at, std::uint64_t tag);

    unsigned smId_;
    const GpuConfig &config_;
    const vptx::LaunchContext &ctx_;
    MemFabric *fabric_;
    vptx::WarpExecutor executor_;
    StatGroup stats_;
    StatGroup rtStats_{"rt"};  ///< per-SM so parallel cycling is race-free
    Histogram rtLatency_{kRtLatencyBucketWidth, kRtLatencyBuckets};

    Cache l1_;
    std::unique_ptr<Cache> rtCache_;
    RtUnit rtUnit_;

    std::vector<WarpSlot> warps_;
    unsigned warpLimit_;
    int greedyWarp_ = -1;
    unsigned rrCursor_ = 0;
    Cycle sfuReadyAt_ = 0;

    // L1 request path: sector requests awaiting L1 acceptance.
    struct L1Req
    {
        Addr sector;
        bool write;
        AccessOrigin origin;
        std::uint64_t tag;
    };
    std::deque<L1Req> l1Queue_;

    std::unordered_map<std::uint64_t, LdstOp> ldstOps_;
    std::uint64_t nextLdstTag_ = 1;
    std::vector<PendingWriteback> writebacks_;

    /**
     * Completion scheduled after an L1 hit or fill. Kept in a min-heap
     * keyed on (ready cycle, insertion sequence) so retiring pops only
     * the due entries instead of churning the whole queue every cycle;
     * the sequence keeps equal-cycle retirement in FIFO order.
     */
    struct TagEvent
    {
        Cycle at;
        std::uint64_t seq;
        std::uint64_t tag;
    };
    struct TagEventAfter
    {
        bool
        operator()(const TagEvent &a, const TagEvent &b) const
        {
            return a.at != b.at ? a.at > b.at : a.seq > b.seq;
        }
    };
    std::priority_queue<TagEvent, std::vector<TagEvent>, TagEventAfter>
        tagReady_;
    std::uint64_t tagSeq_ = 0;

    /**
     * SM→fabric traffic staged during cycle(), drained at the barrier.
     * Each entry carries the cycle it was staged in so an epoch barrier
     * can replay the span's injections in exact (cycle, SM) order;
     * entries are appended in non-decreasing cycle order, so
     * flushStagedCycle only needs the cursor below. Excluded from
     * stateDigest(): at every barrier the queue is empty.
     */
    struct StagedRequest
    {
        Cycle at;
        MemRequest req;
    };
    std::vector<StagedRequest> stagedRequests_;
    std::size_t stagedCursor_ = 0; ///< epoch drain progress

    TimelineShard *timeline_ = nullptr;

    Cycle now_ = 0; ///< updated at each cycle() for the RT port callbacks
};

/** Top-level timed simulator. */
class GpuSimulator
{
  public:
    GpuSimulator(const GpuConfig &config, const vptx::LaunchContext &ctx);

    /** Run the launch to completion and return all statistics. */
    RunResult run();

  private:
    GpuConfig config_;
    const vptx::LaunchContext &ctx_;
};

} // namespace vksim

#endif // VKSIM_GPU_GPU_H
