/**
 * @file
 * Engine-state checkpointing: versioned binary snapshots of the full
 * simulated machine, taken at epoch barriers (DESIGN.md, "Persistence &
 * recovery contract").
 *
 * A snapshot captures exactly the unit state the per-barrier digest
 * walk covers — SM cores (warps, scoreboard, LDST bookkeeping, caches,
 * RT unit), the memory fabric (L2 slices, DRAM channels, in-flight
 * queues, the core→DRAM clock crossing), the idle-skip sleep set, the
 * global-memory image, dispatch cursors and accumulated statistics —
 * so a run restored from it is bit-identical to the uninterrupted
 * oracle for every thread count, idle-skip setting, and epoch length.
 *
 * Snapshots are only defined at barriers: the staged SM→fabric queues
 * are empty there and every unit's live state equals its lock-step
 * state. Requesting an exact mid-epoch snapshot is a hard API error.
 */

#ifndef VKSIM_GPU_CHECKPOINT_H
#define VKSIM_GPU_CHECKPOINT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/types.h"

namespace vksim {

struct GpuConfig;

/** A serialized engine state plus the barrier cycle it was taken at. */
struct EngineSnapshot
{
    Cycle cycle = 0;
    /** Structural-config digest the snapshot is only valid under. */
    std::uint64_t configDigest = 0;
    std::vector<std::uint8_t> bytes;
};

/** Checkpoint/restore knobs, embedded in GpuConfig. */
struct CheckpointConfig
{
    /**
     * Auto-snapshot period in cycles (0 = off): at the first epoch
     * barrier at or after each multiple of `every`, the engine writes a
     * snapshot to `path` (atomic temp-file + rename, so a crash never
     * leaves a torn file).
     */
    Cycle every = 0;
    std::string path;

    /**
     * One-shot in-memory snapshot request: capture the state at the
     * first epoch barrier at or after this cycle into
     * RunResult::snapshot (~Cycle(0) = off). The run continues
     * unperturbed — capturing is purely observational.
     */
    Cycle snapshotAt = ~Cycle(0);

    /**
     * Require the one-shot snapshot to land exactly at `snapshotAt`.
     * When the engine's barrier structure cannot stop there (the cycle
     * falls mid-epoch), the run throws SimError instead of silently
     * snapshotting at a later barrier.
     */
    bool exact = false;

    /** Resume from this snapshot instead of starting at cycle 0. */
    std::shared_ptr<const EngineSnapshot> resume;

    bool
    enabled() const
    {
        return every != 0 || snapshotAt != ~Cycle(0) || resume != nullptr;
    }
};

/** Snapshot file format version (bump on any payload layout change). */
inline constexpr std::uint32_t kSnapshotVersion = 3;

/**
 * Digest of the structural GPU configuration a snapshot depends on.
 * Deliberately excludes behavior-neutral execution knobs (threads,
 * idleSkip, epochCycles, check level, digest/sweep instrumentation,
 * timeline, checkpoint settings, clocks-as-reporting): a snapshot from
 * a 4-thread epoch-stepped run restores into a serial lock-step engine
 * and vice versa.
 */
std::uint64_t gpuConfigDigest(const GpuConfig &config);

/**
 * Write `snap` to `path` atomically: the bytes land in a temp file that
 * is renamed over the target only after a successful flush, and the
 * header carries a version, the config digest, the barrier cycle, and
 * an FNV-1a digest of the payload. Throws SimError on I/O failure.
 */
void writeSnapshotFile(const std::string &path, const EngineSnapshot &snap);

/**
 * Read and verify a snapshot file. Throws SimError with an actionable
 * message on a bad magic, an unknown version, a truncated payload, or
 * a payload-digest mismatch (bit rot / torn write).
 */
EngineSnapshot readSnapshotFile(const std::string &path);

} // namespace vksim

#endif // VKSIM_GPU_CHECKPOINT_H
