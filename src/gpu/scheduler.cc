#include "gpu/scheduler.h"

#include <algorithm>

#include "util/log.h"

namespace vksim {

EngineScheduler::EngineScheduler(
    std::vector<std::unique_ptr<SmCore>> &sms, bool enabled)
    : sms_(sms), enabled_(enabled)
{
    units_.resize(sms_.size());
    active_.reserve(sms_.size());
    for (unsigned s = 0; s < sms_.size(); ++s)
        active_.push_back(s);
}

void
EngineScheduler::wake(unsigned sm, Cycle resume)
{
    Unit &u = units_[sm];
    if (u.awake)
        return;
    vksim_assert(resume >= u.sleepSince);
    sms_[sm]->catchUpIdleCycles(u.sleepSince, resume);
    skipped_ += resume - u.sleepSince;
    u.awake = true;
    u.digestValid = false;
    active_.insert(
        std::lower_bound(active_.begin(), active_.end(), sm), sm);
}

void
EngineScheduler::reconcile(Cycle from)
{
    if (!enabled_)
        return;
    std::size_t kept = 0;
    for (unsigned sm : active_) {
        if (sms_[sm]->sleepable()) {
            units_[sm].awake = false;
            units_[sm].sleepSince = from;
        } else {
            active_[kept++] = sm;
        }
    }
    active_.resize(kept);
}

void
EngineScheduler::sleepAt(unsigned sm, Cycle from)
{
    Unit &u = units_[sm];
    if (!u.awake)
        return;
    vksim_assert(sms_[sm]->sleepable());
    u.awake = false;
    u.sleepSince = from;
    active_.erase(
        std::lower_bound(active_.begin(), active_.end(), sm));
}

std::uint64_t
EngineScheduler::digest(unsigned sm)
{
    Unit &u = units_[sm];
    if (u.awake)
        return sms_[sm]->stateDigest();
    if (!u.digestValid) {
        u.digest = sms_[sm]->stateDigest();
        u.digestValid = true;
    }
    return u.digest;
}

void
EngineScheduler::finish(Cycle end)
{
    for (unsigned sm = 0; sm < units_.size(); ++sm)
        wake(sm, end);
}

void
EngineScheduler::saveState(serial::Writer &w) const
{
    w.u64(units_.size());
    for (const Unit &u : units_) {
        w.b(u.awake);
        w.u64(u.sleepSince);
    }
    w.u64(skipped_);
}

void
EngineScheduler::loadState(serial::Reader &r)
{
    std::uint64_t num_units = r.u64();
    vksim_assert(num_units == units_.size());
    active_.clear();
    for (unsigned sm = 0; sm < units_.size(); ++sm) {
        Unit &u = units_[sm];
        u.awake = r.b();
        u.sleepSince = r.u64();
        u.digestValid = false;
        if (u.awake)
            active_.push_back(sm);
    }
    skipped_ = r.u64();
}

} // namespace vksim
