/**
 * @file
 * VulkanSim facade: ties the Vulkan-like frontend (workload launches) to
 * the cycle-level GPU model, and provides the named configurations used
 * by the evaluation (Table III baseline/mobile, the Figure 15 memory
 * variants, and the Figure 19 RTX-2080-SUPER-matched configurations).
 */

#ifndef VKSIM_CORE_VULKANSIM_H
#define VKSIM_CORE_VULKANSIM_H

#include "gpu/gpu.h"
#include "util/cli.h"
#include "workloads/workload.h"

namespace vksim {

/**
 * Memory-system variants of the paper's Figure 15, plus the Modern
 * fidelity preset (DESIGN.md, "Memory model contract"): 128-byte
 * line-tagged sectored L1/L2 with streaming reservation in the L1, and
 * a bank-grouped DRAM channel with tCCDL/tCCDS, tRRD activation
 * spacing, periodic refresh, and XOR-folded L2 interleaving.
 */
enum class MemoryVariant
{
    Baseline,   ///< shared L1 for shader + RT accesses
    RtCache,    ///< dedicated RT cache next to the L1
    PerfectBvh, ///< zero-latency RT-unit memory accesses
    PerfectMem, ///< zero-latency DRAM
    Modern      ///< sectored caches + bank-grouped DRAM with refresh
};

/** Apply a memory variant to a configuration. */
GpuConfig applyMemoryVariant(GpuConfig config, MemoryVariant variant);

/**
 * Figure 19 correlation-study configurations: parameters matched to the
 * RTX 2080 SUPER from public data, then progressively tuned.
 * step = 0: matched clocks/SM count/cache sizes, 4 warps per RT unit;
 * step = 1: increased cache and DRAM latencies, 2 warps per RT unit;
 * step = 2: one warp per RT unit (the paper's closest match).
 */
GpuConfig rtxMatchedConfig(int step);

/**
 * Register the simulator flags every example and tool shares on `cli`:
 * --threads / --serial, --perf, --check, --stats-json, --timeline,
 * --timeline-sample, --timeline-max-events. Pair with applySimFlags()
 * after parsing.
 */
void addSimFlags(Cli &cli);

/**
 * Fold the parsed shared flags into `config` (thread count, perf
 * summary, check level, timeline sink). Returns false after printing an
 * error if a value does not parse (bad --check level). --stats-json is
 * left to the caller: it names an output file, not a config knob.
 */
bool applySimFlags(const Cli &cli, GpuConfig *config);

// Single-run simulation goes through service::SimService (service.h):
//   service::defaultService().submit(workload, config).take().run
// The deprecated simulateWorkload()/simulate() shims that used to live
// here are gone; see DESIGN.md, "Service & batching contract".

} // namespace vksim

#endif // VKSIM_CORE_VULKANSIM_H
