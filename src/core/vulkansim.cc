#include "core/vulkansim.h"

#include "check/accelcheck.h"
#include "check/diffhook.h"
#include "reftrace/tracer.h"
#include "util/log.h"

namespace vksim {

GpuConfig
applyMemoryVariant(GpuConfig config, MemoryVariant variant)
{
    switch (variant) {
      case MemoryVariant::Baseline:
        break;
      case MemoryVariant::RtCache:
        config.useRtCache = true;
        break;
      case MemoryVariant::PerfectBvh:
        config.rt.perfectBvh = true;
        break;
      case MemoryVariant::PerfectMem:
        config.fabric.perfectMem = true;
        break;
    }
    return config;
}

GpuConfig
rtxMatchedConfig(int step)
{
    // RTX 2080 SUPER public parameters: 48 SMs, 1815 MHz boost core,
    // 15.5 Gbps GDDR6 on a 256-bit bus, 4 MB L2.
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 48;
    cfg.coreClockMhz = 1815.0;
    cfg.fabric.numPartitions = 8;
    cfg.fabric.l2 = CacheConfig{"l2", 4 * 1024 * 1024 / 8, 16, 160, 128, 16};
    cfg.fabric.dramClockRatio = 1937.5 / 1815.0 * 2.0;
    cfg.rt.maxWarps = 4;

    if (step >= 1) {
        // Khairy et al. / Dalmia et al. latencies.
        cfg.l1.latency = 33;
        cfg.fabric.l2.latency = 213;
        cfg.fabric.dram.tRcd = 34;
        cfg.fabric.dram.tRp = 34;
        cfg.fabric.dram.tCas = 34;
        cfg.rt.maxWarps = 2;
    }
    if (step >= 2)
        cfg.rt.maxWarps = 1;
    return cfg;
}

RunResult
simulateWorkload(wl::Workload &workload, const GpuConfig &config)
{
    GpuConfig cfg = config;
    cfg.fccEnabled = workload.params().fcc;
    cfg.rt.fccEnabled = workload.params().fcc;
    if (cfg.fccEnabled && cfg.its)
        vksim_fatal("FCC and ITS cannot be combined: the per-warp "
                    "coalescing buffer assumes serialized traverses");
    if (cfg.checkLevel == check::CheckLevel::Full) {
        // Static leg: validate the serialized BVH before simulating on
        // it (layout round-trip, child-AABB containment, leaf backrefs).
        check::Reporter rep;
        checkAccelStruct(*workload.launch().gmem, workload.accel(),
                         &workload.scene(), rep);
        // Dynamic leg: replay sampled finished rays through the CPU
        // reference tracer as the timed run completes them.
        CpuTracer tracer(workload.scene(), *workload.launch().gmem,
                         workload.accel());
        check::RefTraceDiff diff(tracer, *workload.launch().gmem, &rep);
        check::ScopedTraverseHook hook(
            [&diff](Addr frame_base, const RayTraversal &trav) {
                diff.onTraverseDone(frame_base, trav);
            });
        GpuSimulator sim(cfg, workload.launch());
        return sim.run();
    }
    GpuSimulator sim(cfg, workload.launch());
    return sim.run();
}

SimOutcome
simulate(wl::WorkloadId id, const wl::WorkloadParams &params,
         const GpuConfig &config)
{
    wl::Workload workload(id, params);
    SimOutcome outcome;
    outcome.run = simulateWorkload(workload, config);
    outcome.image = workload.readFramebuffer();
    return outcome;
}

} // namespace vksim
