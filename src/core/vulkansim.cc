#include "core/vulkansim.h"

#include <cstdio>

namespace vksim {

GpuConfig
applyMemoryVariant(GpuConfig config, MemoryVariant variant)
{
    switch (variant) {
      case MemoryVariant::Baseline:
        break;
      case MemoryVariant::RtCache:
        config.useRtCache = true;
        break;
      case MemoryVariant::PerfectBvh:
        config.rt.perfectBvh = true;
        break;
      case MemoryVariant::PerfectMem:
        config.fabric.perfectMem = true;
        break;
      case MemoryVariant::Modern:
        // Line-tagged sectored caches: 128-byte lines over the 32-byte
        // sectors, sector-fill, with fill-time streaming reservation in
        // the L1 (a fill allocates a tag only when the miss gathered at
        // least two coalesced targets; single-use streams bypass).
        config.l1.lineBytes = 128;
        config.l1.streamingThreshold = 2;
        config.fabric.l2.lineBytes = 128;
        // HBM-style channel timing: 4 bank groups with long/short
        // column-to-column spacing, activate-to-activate spacing, and
        // periodic all-bank refresh (tREFI/tRFC in DRAM cycles).
        config.fabric.dram.bankGroups = 4;
        config.fabric.dram.tCcdL = 6;
        config.fabric.dram.tCcdS = 4;
        config.fabric.dram.tRrd = 8;
        config.fabric.dram.tRefi = 3900;
        config.fabric.dram.tRfc = 160;
        config.fabric.interleave = L2Interleave::XorFold;
        break;
    }
    return config;
}

GpuConfig
rtxMatchedConfig(int step)
{
    // RTX 2080 SUPER public parameters: 48 SMs, 1815 MHz boost core,
    // 15.5 Gbps GDDR6 on a 256-bit bus, 4 MB L2.
    GpuConfig cfg = baselineGpuConfig();
    cfg.numSms = 48;
    cfg.coreClockMhz = 1815.0;
    cfg.fabric.numPartitions = 8;
    cfg.fabric.l2 = CacheConfig{"l2", 4 * 1024 * 1024 / 8, 16, 160, 128, 16};
    cfg.fabric.dramClockRatio = 1937.5 / 1815.0 * 2.0;
    cfg.rt.maxWarps = 4;

    if (step >= 1) {
        // Khairy et al. / Dalmia et al. latencies.
        cfg.l1.latency = 33;
        cfg.fabric.l2.latency = 213;
        cfg.fabric.dram.tRcd = 34;
        cfg.fabric.dram.tRp = 34;
        cfg.fabric.dram.tCas = 34;
        cfg.rt.maxWarps = 2;
    }
    if (step >= 2)
        cfg.rt.maxWarps = 1;
    return cfg;
}

void
addSimFlags(Cli &cli)
{
    cli.option("threads", "N", "0",
               "engine worker threads (0 = auto via VKSIM_THREADS / "
               "hardware)")
        .flag("serial", "run the serial engine (same as --threads=1)")
        .flag("no-idle-skip",
              "lock-step stepping: cycle every unit every cycle "
              "(idle-skip is behavior-neutral; this is the debugging / "
              "cross-check escape hatch)")
        .option("epoch-cycles", "N", "",
                "epoch-stepped engine: cycles each SM advances between "
                "barriers, clamped to the fabric response-latency skew "
                "bound (1 = classic lock-step oracle; default 64)")
        .flag("perf", "print a host-performance summary per run")
        .option("check", "off|basic|full", "",
                "self-validation level (default from VKSIM_CHECK)")
        .option("stats-json", "file", "",
                "dump the full metrics registry as JSON")
        .option("timeline", "file", "",
                "write a Chrome-trace timeline of the run")
        .option("timeline-sample", "cycles", "64",
                "timeline sampling interval in cycles")
        .option("timeline-max-events", "N", "1048576",
                "cap on buffered timeline events");
}

bool
applySimFlags(const Cli &cli, GpuConfig *config)
{
    config->threads = cli.threadCount();
    if (cli.getBool("no-idle-skip"))
        config->idleSkip = false;
    if (cli.has("epoch-cycles")) {
        int epochs = cli.getInt("epoch-cycles");
        if (epochs < 1) {
            std::fprintf(stderr,
                         "bad --epoch-cycles '%d' (must be >= 1)\n",
                         epochs);
            return false;
        }
        config->epochCycles = static_cast<unsigned>(epochs);
    }
    if (cli.getBool("perf"))
        config->printPerfSummary = true;
    if (cli.has("check")
        && !check::parseCheckLevel(cli.get("check"),
                                   &config->checkLevel)) {
        std::fprintf(stderr, "bad --check level '%s' (off/basic/full)\n",
                     cli.get("check").c_str());
        return false;
    }
    config->timeline.path = cli.get("timeline");
    config->timeline.sampleInterval =
        static_cast<Cycle>(cli.getInt("timeline-sample"));
    config->timeline.maxEvents =
        static_cast<std::uint64_t>(cli.getInt("timeline-max-events"));
    return true;
}

} // namespace vksim
