/**
 * @file
 * ClockedUnit: the stepping contract every timed unit implements.
 *
 * The engine scheduler (src/gpu/scheduler.h) no longer assumes a flat
 * "cycle everything every cycle" machine. Instead each timed unit —
 * SmCore, RtUnit, Cache, DramChannel, MemFabric — exposes the same
 * four-point interface:
 *
 *  - cycle(now): advance one tick of the unit's *own* clock domain.
 *  - idle(): no work this unit could make progress on right now.
 *  - nextEventCycle(): the earliest tick (again in the unit's own
 *    domain) at which the unit's observable state can change without
 *    new external input. 0 means "every cycle"; kNoPendingEvent means
 *    "never, until something is injected".
 *  - wakeHint(now): external input arrived (warp dispatch, response
 *    delivery); a sleeping unit must be resumed at `now`.
 *
 * The contract that makes idle-skip behavior-neutral: while a unit is
 * asleep the scheduler may not call cycle() on it, and in exchange the
 * unit guarantees that lock-step cycling over that span would have been
 * a pure counter replay — no state transition, no stat other than the
 * per-cycle heartbeat counters, no digest change. See DESIGN.md,
 * "Stepping contract".
 */

#ifndef VKSIM_CORE_CLOCKEDUNIT_H
#define VKSIM_CORE_CLOCKEDUNIT_H

#include "util/types.h"

namespace vksim {

/** nextEventCycle() value meaning "no pending event at all". */
inline constexpr Cycle kNoPendingEvent = ~Cycle(0);

class ClockedUnit
{
  public:
    virtual ~ClockedUnit() = default;

    /** Advance one tick of this unit's clock domain. */
    virtual void cycle(Cycle now) = 0;

    /** True when the unit has no work it could progress on its own. */
    virtual bool idle() const = 0;

    /**
     * Earliest tick (in this unit's clock domain) at which observable
     * state can change without new external input. Conservative answers
     * toward 0 are always safe; kNoPendingEvent promises quiescence.
     */
    virtual Cycle nextEventCycle() const = 0;

    /** External input arrived; a sleeping unit must resume at `now`. */
    virtual void wakeHint(Cycle now) { (void)now; }
};

} // namespace vksim

#endif // VKSIM_CORE_CLOCKEDUNIT_H
