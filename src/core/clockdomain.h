/**
 * @file
 * ClockDomain: a first-class clock-ratio descriptor.
 *
 * The DRAM clock used to be a fractional tick accumulator buried inside
 * MemFabric::cycle(). Promoting it to a named object lets the engine
 * scheduler reason about clock-domain crossings in one place: how many
 * child-domain ticks a parent-domain cycle produces, and — critically
 * for idle-skip — how many it *would* produce (peek) without mutating
 * the accumulator.
 *
 * Bit-exactness note: advance() must replicate the historical IEEE-754
 * sequence exactly (`accum += ratio; while (accum >= 1.0) accum -= 1.0`)
 * so a fast-forwarded run accumulates the same rounding as a lock-step
 * run. peek() runs the same sequence on a copy.
 */

#ifndef VKSIM_CORE_CLOCKDOMAIN_H
#define VKSIM_CORE_CLOCKDOMAIN_H

namespace vksim {

class ClockDomain
{
  public:
    ClockDomain() = default;
    explicit ClockDomain(double ratio) : ratio_(ratio) {}

    /** Child ticks per parent cycle (e.g. dramClockRatio). */
    double ratio() const { return ratio_; }

    void setRatio(double ratio) { ratio_ = ratio; }

    /**
     * Advance one parent cycle; returns the number of child-domain
     * ticks that elapse. The exact FP sequence is part of the
     * determinism contract — do not "simplify" it.
     */
    unsigned advance()
    {
        accum_ += ratio_;
        unsigned ticks = 0;
        while (accum_ >= 1.0) {
            accum_ -= 1.0;
            ++ticks;
        }
        return ticks;
    }

    /** What advance() would return, without mutating the accumulator. */
    unsigned peek() const
    {
        double a = accum_ + ratio_;
        unsigned ticks = 0;
        while (a >= 1.0) {
            a -= 1.0;
            ++ticks;
        }
        return ticks;
    }

    /**
     * The fractional-tick accumulator as raw IEEE-754 bits, for
     * checkpointing. The value is part of the bit-exact determinism
     * contract, so it round-trips as bits, never through decimal.
     */
    unsigned long long
    accumBits() const
    {
        unsigned long long bits;
        static_assert(sizeof(bits) == sizeof(accum_));
        __builtin_memcpy(&bits, &accum_, sizeof(bits));
        return bits;
    }

    void
    restoreAccumBits(unsigned long long bits)
    {
        __builtin_memcpy(&accum_, &bits, sizeof(accum_));
    }

  private:
    double ratio_ = 1.0;
    double accum_ = 0.0;
};

} // namespace vksim

#endif // VKSIM_CORE_CLOCKDOMAIN_H
